// Package shard partitions the NVM address space across N controller shards
// and maintains the cross-shard fingerprint directory that gives the sharded
// execution mode a global view of which line contents are resident anywhere
// in the device.
//
// The package has two halves:
//
//   - Router is pure arithmetic: global line addresses are striped across
//     shards (shard = addr mod N, local = addr div N), so consecutive lines
//     land on different shards and every shard sees a statistically similar
//     slice of any workload's locality.
//
//   - Directory is the shared fingerprint index. It is generational: readers
//     always see the generation frozen at the last barrier (lock-free — the
//     frozen maps are immutable between Advance calls), while writers
//     accumulate deltas into striped pending buffers under fine-grained
//     mutexes. Advance, called at each epoch barrier by the coordinating
//     goroutine, folds the pending deltas into the next frozen generation.
//
// Determinism is the point of the design: within an epoch every lookup
// answers from the same frozen snapshot no matter how worker goroutines
// interleave, and pending deltas are commutative per (fingerprint, shard)
// integers, so the post-barrier generation is identical for any worker
// count or scheduling. The simulator's invariants doc (DESIGN.md section
// 12) describes how the sharded runner drives the barrier protocol.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Router stripes global line addresses across n shards.
type Router struct {
	n uint64
}

// NewRouter returns a router over n shards (n >= 1).
func NewRouter(n int) Router {
	if n < 1 {
		panic(fmt.Sprintf("shard: router over %d shards", n))
	}
	return Router{n: uint64(n)}
}

// Shards returns the shard count.
func (r Router) Shards() int { return int(r.n) }

// ShardOf returns the shard owning the global line address.
func (r Router) ShardOf(addr uint64) int { return int(addr % r.n) }

// Local translates a global line address into the owning shard's local
// address space.
func (r Router) Local(addr uint64) uint64 { return addr / r.n }

// Global is the inverse of (ShardOf, Local).
func (r Router) Global(shard int, local uint64) uint64 {
	return local*r.n + uint64(shard)
}

// LinesFor returns how many of totalLines global lines stripe onto the
// shard — the size of the shard's local address space. Every shard gets at
// least one line so degenerate configurations still construct a device.
func (r Router) LinesFor(shard int, totalLines uint64) uint64 {
	if shard < 0 || uint64(shard) >= r.n {
		panic(fmt.Sprintf("shard: shard %d of %d", shard, r.n))
	}
	if totalLines <= uint64(shard) {
		return 1
	}
	return (totalLines - uint64(shard) + r.n - 1) / r.n
}

// numStripes is the lock-striping width of the directory. 64 stripes keeps
// the probability of two shards contending on one mutex low at any
// realistic shard count while the per-directory footprint stays small.
const numStripes = 64

// stripe is one lock-striped slice of the directory. frozen is immutable
// between Advance calls and read without the mutex; pending accumulates
// this epoch's deltas under mu.
type stripe struct {
	mu      sync.Mutex
	frozen  map[uint32][]uint32 // fingerprint → live-location count per shard
	pending map[uint32][]int32  // fingerprint → this epoch's deltas per shard
}

// Directory is the cross-shard fingerprint index. Construct with
// NewDirectory; the zero value is not usable.
//
// Concurrency contract: Publish and the read methods (GlobalRefs,
// HeldElsewhere) may be called concurrently from any goroutine between two
// Advance calls. Advance itself must only run at a barrier — when no
// Publish or read is in flight — which is exactly when the sharded
// runner's epoch workers have all parked.
type Directory struct {
	shards   int
	stripes  [numStripes]stripe
	advances uint64

	// pubs counts Publish calls per shard during the current epoch
	// (atomics, so publishers never contend on a shared lock for the
	// count); Advance folds it into lastPubs and resets. The counts are a
	// deterministic function of the request stream — they exist for live
	// imbalance monitoring and never enter run reports.
	pubs     []uint64
	lastPubs []uint64
}

// NewDirectory returns an empty directory over the given shard count.
func NewDirectory(shards int) *Directory {
	if shards < 1 {
		panic(fmt.Sprintf("shard: directory over %d shards", shards))
	}
	d := &Directory{
		shards:   shards,
		pubs:     make([]uint64, shards),
		lastPubs: make([]uint64, shards),
	}
	for i := range d.stripes {
		d.stripes[i].frozen = make(map[uint32][]uint32)
		d.stripes[i].pending = make(map[uint32][]int32)
	}
	return d
}

// Shards returns the directory's shard count.
func (d *Directory) Shards() int { return d.shards }

func (d *Directory) stripeOf(h uint32) *stripe {
	// Fingerprints are CRC-32 values; the low bits are well mixed, but fold
	// the high half in so truncated fingerprint widths still spread.
	return &d.stripes[(h^h>>16)%numStripes]
}

// Publish records a fingerprint-index change from one shard: delta is +1
// when the shard's dedup tables added a live location under h, -1 when one
// was removed. The change lands in the pending generation and becomes
// visible to readers only after the next Advance. Safe for concurrent use.
func (d *Directory) Publish(shard int, h uint32, delta int) {
	if shard < 0 || shard >= d.shards {
		panic(fmt.Sprintf("shard: publish from shard %d of %d", shard, d.shards))
	}
	atomic.AddUint64(&d.pubs[shard], 1)
	st := d.stripeOf(h)
	st.mu.Lock()
	p := st.pending[h]
	if p == nil {
		p = make([]int32, d.shards)
		st.pending[h] = p
	}
	p[shard] += int32(delta)
	st.mu.Unlock()
}

// Advance folds the pending deltas into a new frozen generation and clears
// the pending buffers. Call only at an epoch barrier (see the concurrency
// contract on Directory).
func (d *Directory) Advance() {
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.Lock()
		for h, deltas := range st.pending {
			f := st.frozen[h]
			if f == nil {
				f = make([]uint32, d.shards)
				st.frozen[h] = f
			}
			live := false
			for s, delta := range deltas {
				n := int64(f[s]) + int64(delta)
				if n < 0 {
					panic(fmt.Sprintf("shard: fingerprint %#x count below zero on shard %d", h, s))
				}
				f[s] = uint32(n)
				if n > 0 {
					live = true
				}
			}
			if !live {
				delete(st.frozen, h)
			}
			delete(st.pending, h)
		}
		st.mu.Unlock()
	}
	for i := range d.pubs {
		d.lastPubs[i] = atomic.SwapUint64(&d.pubs[i], 0)
	}
	d.advances++
}

// EpochPublishes returns each shard's Publish-call count during the epoch
// closed by the most recent Advance — a cheap, deterministic imbalance
// signal for live monitors (it never enters run reports). The returned
// slice is a copy. Like the read methods it must not race an Advance.
func (d *Directory) EpochPublishes() []uint64 {
	out := make([]uint64, len(d.lastPubs))
	copy(out, d.lastPubs)
	return out
}

// GlobalRefs returns the number of live locations holding data with
// fingerprint h anywhere in the device, per the frozen generation.
func (d *Directory) GlobalRefs(h uint32) uint64 {
	var total uint64
	for _, c := range d.stripeOf(h).frozen[h] {
		total += uint64(c)
	}
	return total
}

// HeldElsewhere reports whether a shard other than self holds a live
// location with fingerprint h, per the frozen generation — the cross-shard
// duplicate test.
func (d *Directory) HeldElsewhere(h uint32, self int) bool {
	for s, c := range d.stripeOf(h).frozen[h] {
		if s != self && c > 0 {
			return true
		}
	}
	return false
}

// Generation returns how many times the directory has advanced.
func (d *Directory) Generation() uint64 { return d.advances }

// Stats is a census of the frozen generation.
type Stats struct {
	// Fingerprints counts distinct fingerprints with at least one live
	// location anywhere; Locations the live locations under them.
	Fingerprints uint64 `json:"fingerprints"`
	Locations    uint64 `json:"locations"`
	// Shared counts fingerprints live on more than one shard — the upper
	// bound on what cross-shard mapping could deduplicate beyond the
	// shard-local tables.
	Shared uint64 `json:"shared"`
	// Advances is the number of epoch barriers the directory has crossed.
	Advances uint64 `json:"advances"`
}

// Snapshot summarizes the frozen generation. Like the read methods it must
// not race an Advance; the sharded runner calls it after the final barrier.
func (d *Directory) Snapshot() Stats {
	st := Stats{Advances: d.advances}
	for i := range d.stripes {
		for _, counts := range d.stripes[i].frozen {
			st.Fingerprints++
			holders := 0
			for _, c := range counts {
				st.Locations += uint64(c)
				if c > 0 {
					holders++
				}
			}
			if holders > 1 {
				st.Shared++
			}
		}
	}
	return st
}

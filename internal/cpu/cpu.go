// Package cpu provides the stall-accounting processor model that converts
// memory latencies into instructions-per-cycle (IPC), the paper's
// system-level metric (Figure 17).
//
// The model is deliberately first-order, matching what the evaluation needs:
// each hardware thread executes its non-memory instructions at one
// instruction per cycle and stalls for the full latency of its memory
// requests. Writes stall the thread to completion because persistent memory
// requires ordered, flushed writes (Section III: "the processor has to stall
// and wait for a memory write to be completed before issuing the next one").
package cpu

import (
	"fmt"

	"dewrite/internal/config"
	"dewrite/internal/stats"
	"dewrite/internal/units"
)

// Machine tracks per-thread simulated time and instruction counts.
type Machine struct {
	clock   units.Clock
	threads []thread

	writeStall stats.Latency
	readStall  stats.Latency
}

// WriteWindow is the per-thread bound on outstanding ordered writes: the
// persist window of epoch persistency. A thread issues writes freely until
// the window fills, then stalls for the oldest write's persist — so write
// bursts form per-bank queues at the device (the contention the paper's
// Figures 14/16 measure) while write latency still lands on the critical
// path once the window backs up.
const WriteWindow = 16

// ReadWindow bounds outstanding loads per thread: the memory-level
// parallelism of an out-of-order core. A thread issues loads freely until
// the window fills, then stalls for the oldest load's data.
const ReadWindow = 8

type thread struct {
	now          units.Time
	pending      []units.Time // completion times of in-flight writes, FIFO
	pendingReads []units.Time // completion times of in-flight loads, FIFO
	instructions uint64
	memStall     units.Duration
}

// NewMachine returns a machine with the given hardware thread count running
// at the configured core frequency.
func NewMachine(threads int) *Machine {
	if threads < 1 {
		panic(fmt.Sprintf("cpu: %d threads", threads))
	}
	return &Machine{
		clock:   units.NewClock(config.CPUHz),
		threads: make([]thread, threads),
	}
}

// Threads returns the hardware thread count.
func (m *Machine) Threads() int { return len(m.threads) }

// Now returns thread t's current simulated time.
func (m *Machine) Now(t int) units.Time { return m.threads[t].now }

// Execute advances thread t by n non-memory instructions (1 IPC).
func (m *Machine) Execute(t int, n uint64) {
	th := &m.threads[t]
	th.instructions += n
	th.now = th.now.Add(m.clock.Cycles(n))
}

// Delay advances thread t by a fixed on-chip latency (e.g. cache lookups)
// without retiring instructions.
func (m *Machine) Delay(t int, d units.Duration) {
	m.threads[t].now = m.threads[t].now.Add(d)
}

// IssueWrite begins a memory write instruction. Persistent-memory ordering
// bounds the number of unpersisted writes (WriteWindow); when the window is
// full the thread stalls until its oldest write persists — that stall is how
// write latency lands on the critical path under bursts. It returns the
// issue time.
func (m *Machine) IssueWrite(t int) units.Time {
	th := &m.threads[t]
	th.instructions++
	var stall units.Duration
	if len(th.pending) >= WriteWindow {
		oldest := th.pending[0]
		th.pending = th.pending[1:]
		if oldest > th.now {
			stall = oldest.Sub(th.now)
			th.memStall += stall
			th.now = oldest
		}
	}
	m.writeStall.Observe(stall)
	return th.now
}

// RetireWrite records the persist time of the write issued by IssueWrite,
// joining the thread's ordered persist window.
func (m *Machine) RetireWrite(t int, done units.Time) {
	th := &m.threads[t]
	th.pending = append(th.pending, done)
}

// IssueRead begins a memory load. When the thread already has ReadWindow
// loads in flight it stalls until the oldest returns. It returns the issue
// time.
func (m *Machine) IssueRead(t int) units.Time {
	th := &m.threads[t]
	th.instructions++
	var stall units.Duration
	if len(th.pendingReads) >= ReadWindow {
		oldest := th.pendingReads[0]
		th.pendingReads = th.pendingReads[1:]
		if oldest > th.now {
			stall = oldest.Sub(th.now)
			th.memStall += stall
			th.now = oldest
		}
	}
	m.readStall.Observe(stall)
	return th.now
}

// RetireRead records the data-return time of the load issued by IssueRead.
func (m *Machine) RetireRead(t int, done units.Time) {
	th := &m.threads[t]
	th.pendingReads = append(th.pendingReads, done)
}

// CompleteWrite accounts a memory write instruction issued at the thread's
// current time and completing at done: the thread stalls to completion.
// It models a synchronous flush (used at drain points and by tests); the
// common path is IssueWrite/RetireWrite.
func (m *Machine) CompleteWrite(t int, done units.Time) {
	th := &m.threads[t]
	th.instructions++ // the store itself
	if done < th.now {
		panic("cpu: write completes before issue")
	}
	stall := done.Sub(th.now)
	th.memStall += stall
	m.writeStall.Observe(stall)
	th.now = done
}

// CompleteRead accounts a memory read instruction completing at done.
func (m *Machine) CompleteRead(t int, done units.Time) {
	th := &m.threads[t]
	th.instructions++
	if done < th.now {
		panic("cpu: read completes before issue")
	}
	stall := done.Sub(th.now)
	th.memStall += stall
	m.readStall.Observe(stall)
	th.now = done
}

// Instructions returns the total instructions executed across threads.
func (m *Machine) Instructions() uint64 {
	var sum uint64
	for i := range m.threads {
		sum += m.threads[i].instructions
	}
	return sum
}

// Elapsed returns the wall-clock simulated time: the latest thread time,
// including any still-pending write persists (the final drain).
func (m *Machine) Elapsed() units.Duration {
	var max units.Time
	for i := range m.threads {
		if m.threads[i].now > max {
			max = m.threads[i].now
		}
		for _, p := range m.threads[i].pending {
			if p > max {
				max = p
			}
		}
		for _, p := range m.threads[i].pendingReads {
			if p > max {
				max = p
			}
		}
	}
	return max.Sub(0)
}

// Cycles returns the elapsed wall-clock cycles.
func (m *Machine) Cycles() uint64 { return m.clock.CyclesIn(m.Elapsed()) }

// IPC returns aggregate instructions per wall-clock cycle (can exceed 1 with
// multiple threads).
func (m *Machine) IPC() float64 {
	cycles := m.Cycles()
	if cycles == 0 {
		return 0
	}
	return float64(m.Instructions()) / float64(cycles)
}

// MemStallFraction returns the fraction of total thread time spent stalled
// on memory.
func (m *Machine) MemStallFraction() float64 {
	var stall, total units.Duration
	for i := range m.threads {
		stall += m.threads[i].memStall
		total += m.threads[i].now.Sub(0)
	}
	if total == 0 {
		return 0
	}
	return float64(stall) / float64(total)
}

// MeanWriteStall returns the mean write-stall duration.
func (m *Machine) MeanWriteStall() units.Duration { return m.writeStall.Mean() }

// MeanReadStall returns the mean read-stall duration.
func (m *Machine) MeanReadStall() units.Duration { return m.readStall.Mean() }

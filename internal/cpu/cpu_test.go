package cpu

import (
	"testing"

	"dewrite/internal/units"
)

func TestExecuteAdvancesAtOneIPC(t *testing.T) {
	m := NewMachine(1)
	m.Execute(0, 1000)
	if m.Instructions() != 1000 {
		t.Fatalf("instructions = %d", m.Instructions())
	}
	if m.Cycles() != 1000 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
	if got := m.IPC(); got != 1 {
		t.Fatalf("IPC = %v", got)
	}
}

func TestWriteStallLowersIPC(t *testing.T) {
	m := NewMachine(1)
	m.Execute(0, 1000) // 500 ns at 2 GHz
	// A write completing 300 ns later: 600 stall cycles.
	done := m.Now(0).Add(300 * units.Nanosecond)
	m.CompleteWrite(0, done)
	if m.Instructions() != 1001 {
		t.Fatalf("instructions = %d", m.Instructions())
	}
	if m.Cycles() != 1600 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
	if ipc := m.IPC(); ipc >= 1 {
		t.Fatalf("IPC = %v, want < 1 after stall", ipc)
	}
	if m.MeanWriteStall() != 300*units.Nanosecond {
		t.Fatalf("MeanWriteStall = %v", m.MeanWriteStall())
	}
}

func TestReadStallAccounting(t *testing.T) {
	m := NewMachine(1)
	done := m.Now(0).Add(75 * units.Nanosecond)
	m.CompleteRead(0, done)
	if m.MeanReadStall() != 75*units.Nanosecond {
		t.Fatalf("MeanReadStall = %v", m.MeanReadStall())
	}
}

func TestMultiThreadElapsedIsMax(t *testing.T) {
	m := NewMachine(4)
	m.Execute(0, 100)
	m.Execute(1, 500)
	m.Execute(2, 50)
	if m.Cycles() != 500 {
		t.Fatalf("cycles = %d, want slowest thread's 500", m.Cycles())
	}
	// Aggregate IPC exceeds 1 with parallel threads.
	if ipc := m.IPC(); ipc <= 1 {
		t.Fatalf("IPC = %v, want > 1", ipc)
	}
}

func TestMemStallFraction(t *testing.T) {
	m := NewMachine(1)
	m.Execute(0, 200) // 100 ns
	m.CompleteWrite(0, m.Now(0).Add(100*units.Nanosecond))
	got := m.MemStallFraction()
	if got < 0.49 || got > 0.51 {
		t.Fatalf("stall fraction = %v, want ~0.5", got)
	}
}

func TestCompletionBeforeIssuePanics(t *testing.T) {
	m := NewMachine(1)
	m.Execute(0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.CompleteWrite(0, 0)
}

func TestZeroThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(0)
}

func TestIPCZeroCycles(t *testing.T) {
	if NewMachine(1).IPC() != 0 {
		t.Fatal("fresh machine IPC not 0")
	}
}

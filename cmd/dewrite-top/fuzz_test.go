package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseMetrics hammers the Prometheus text parser and everything the
// dashboard does with a parsed scrape: whatever bytes arrive off the wire,
// parsing must either fail cleanly or yield a scrape whose accessors —
// value lookup, histogram assembly, interval subtraction, quantile
// estimation — never panic. The seed corpus starts from a real /metrics
// scrape of the serving daemon (testdata/metrics.txt, regenerate with
// DEWRITE_SCRAPE_OUT=... go test -run TestServeExposition ./cmd/dewrite-serve)
// plus handcrafted lines covering label escapes, timestamps, and the
// malformed shapes the parser must reject without crashing.
func FuzzParseMetrics(f *testing.F) {
	real, err := os.ReadFile(filepath.Join("testdata", "metrics.txt"))
	if err != nil {
		f.Fatalf("reading seed scrape: %v", err)
	}
	f.Add(string(real))
	for _, seed := range []string{
		"",
		"# TYPE x counter\nx 1\n",
		"# HELP x from another exporter\nx{a=\"b\"} 2 1712345678\n",
		`esc{path="a\\b",msg="say \"hi\"\n"} 3` + "\n",
		"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
		"h_bucket{le=\"bogus\"} 1\nh_bucket{le=\"+Inf\"} 0\n",
		"noval\n",
		"x not-a-number\n",
		"x{unterminated=\"\n",
		"x{=\"\"} 1\n",
		"x{} 1\n",
		"x{a=b} 1\n",
		"nan_gauge NaN\ninf_gauge +Inf\n",
		strings.Repeat("y", 70000) + " 1\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sc, err := parseMetrics(strings.NewReader(input))
		if err != nil {
			return // rejected cleanly
		}
		if sc == nil {
			t.Fatal("parseMetrics returned nil scrape with nil error")
		}
		// Exercise every accessor the dashboard uses over whatever families
		// the input produced, plus a family that is surely absent.
		for name := range sc.byName {
			sc.value(name)
			sc.value(name, "shard", "0")
			family := strings.TrimSuffix(name, "_bucket")
			h := sc.histogram(family)
			h.count()
			h.quantile(0.5)
			h.quantile(0.99)
			h.sub(h)
			h.sub(hist{})
		}
		sc.value("definitely_absent", "op", "put")
		sc.histogram("definitely_absent").quantile(0.5)
		for _, s := range sc.samples {
			s.label("le")
		}
	})
}

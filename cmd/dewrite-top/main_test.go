package main

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseMetricsBasics(t *testing.T) {
	const text = `# TYPE dewrite_serve_ready gauge
dewrite_serve_ready 1
# TYPE dewrite_serve_requests_total counter
dewrite_serve_requests_total{op="put"} 120
dewrite_serve_requests_total{op="get"} 80
# TYPE dewrite_run gauge
dewrite_run{name="odd \"quoted\\\" name",x="a\nb"} 3.5
`
	sc, err := parseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if sc.types["dewrite_serve_requests_total"] != "counter" {
		t.Fatalf("types %v", sc.types)
	}
	if got := sc.value("dewrite_serve_ready"); got != 1 {
		t.Fatalf("ready = %v", got)
	}
	if got := sc.value("dewrite_serve_requests_total", "op", "put"); got != 120 {
		t.Fatalf("put total = %v", got)
	}
	if got := sc.value("dewrite_serve_requests_total", "op", "del"); !math.IsNaN(got) {
		t.Fatalf("absent series = %v, want NaN", got)
	}
	// Escaped label values decode.
	if got := sc.value("dewrite_run", "name", `odd "quoted\" name`, "x", "a\nb"); got != 3.5 {
		t.Fatalf("escaped labels did not round-trip: %v", got)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"dewrite_x",
		"dewrite_x notanumber",
		`dewrite_x{op="put" 3`,
	} {
		if _, err := parseMetrics(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parsed %q without error", bad)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	const text = `# TYPE dewrite_lat histogram
dewrite_lat_bucket{le="100"} 50
dewrite_lat_bucket{le="200"} 90
dewrite_lat_bucket{le="400"} 100
dewrite_lat_bucket{le="+Inf"} 100
dewrite_lat_sum 12345
dewrite_lat_count 100
`
	sc, err := parseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	h := sc.histogram("dewrite_lat")
	if h.count() != 100 {
		t.Fatalf("count %v", h.count())
	}
	// p50: target 50 lands exactly on the first bucket boundary → 100.
	if got := h.quantile(0.50); got != 100 {
		t.Fatalf("p50 = %v, want 100", got)
	}
	// p95: target 95 is halfway through (200,400] (prev 90, count 10) →
	// 200 + (95-90)/10 * 200 = 300.
	if got := h.quantile(0.95); math.Abs(got-300) > 1e-9 {
		t.Fatalf("p95 = %v, want 300", got)
	}
	// p100 would land in +Inf: clamp to the highest finite bound.
	inf := hist{les: []float64{100, math.Inf(1)}, cum: []float64{0, 10}}
	if got := inf.quantile(0.99); got != 100 {
		t.Fatalf("+Inf clamp = %v, want 100", got)
	}
	var empty hist
	if got := empty.quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %v, want NaN", got)
	}
}

func TestHistogramIntervalSub(t *testing.T) {
	prev := hist{les: []float64{10, math.Inf(1)}, cum: []float64{5, 8}}
	cur := hist{les: []float64{10, math.Inf(1)}, cum: []float64{9, 20}}
	d := cur.sub(prev)
	if d.cum[0] != 4 || d.cum[1] != 12 {
		t.Fatalf("interval %v", d.cum)
	}
	// Counter reset falls back to cumulative.
	reset := hist{les: cur.les, cum: []float64{1, 2}}
	if got := reset.sub(prev); got.cum[1] != 2 {
		t.Fatalf("reset fallback %v", got.cum)
	}
}

const serveScrape = `# TYPE dewrite_serve_ready gauge
dewrite_serve_ready 1
# TYPE dewrite_serve_connections_open gauge
dewrite_serve_connections_open 3
# TYPE dewrite_serve_puts gauge
dewrite_serve_puts{shard="0"} 60
dewrite_serve_puts{shard="1"} 40
# TYPE dewrite_serve_gets gauge
dewrite_serve_gets{shard="0"} 30
dewrite_serve_gets{shard="1"} 20
# TYPE dewrite_serve_queue_depth gauge
dewrite_serve_queue_depth{shard="0"} 2
dewrite_serve_queue_depth{shard="1"} 0
# TYPE dewrite_serve_occupancy gauge
dewrite_serve_occupancy{shard="0"} 0.25
dewrite_serve_occupancy{shard="1"} 0.5
# TYPE dewrite_serve_cross_shard_dup_hits gauge
dewrite_serve_cross_shard_dup_hits{shard="0"} 15
dewrite_serve_cross_shard_dup_hits{shard="1"} 10
# TYPE dewrite_serve_directory_fingerprints gauge
dewrite_serve_directory_fingerprints 42
# TYPE dewrite_serve_directory_shared gauge
dewrite_serve_directory_shared 7
# TYPE dewrite_serve_advances_total counter
dewrite_serve_advances_total 9
# TYPE dewrite_serve_requests_total counter
dewrite_serve_requests_total{op="put"} 100
dewrite_serve_requests_total{op="get"} 50
dewrite_serve_requests_total{op="stats"} 1
# TYPE dewrite_serve_barrier_stall_ns_total counter
dewrite_serve_barrier_stall_ns_total{shard="0"} 1000000
dewrite_serve_barrier_stall_ns_total{shard="1"} 2000000
# TYPE dewrite_serve_request_latency_ns histogram
dewrite_serve_request_latency_ns_bucket{op="put",le="1000"} 10
dewrite_serve_request_latency_ns_bucket{op="put",le="2000"} 90
dewrite_serve_request_latency_ns_bucket{op="put",le="+Inf"} 100
dewrite_serve_request_latency_ns_sum{op="put"} 150000
dewrite_serve_request_latency_ns_count{op="put"} 100
dewrite_serve_request_latency_ns_bucket{op="get",le="1000"} 50
dewrite_serve_request_latency_ns_bucket{op="get",le="2000"} 50
dewrite_serve_request_latency_ns_bucket{op="get",le="+Inf"} 50
dewrite_serve_request_latency_ns_sum{op="get"} 25000
dewrite_serve_request_latency_ns_count{op="get"} 50
dewrite_serve_request_latency_ns_bucket{op="stats",le="1000"} 1
dewrite_serve_request_latency_ns_bucket{op="stats",le="2000"} 1
dewrite_serve_request_latency_ns_bucket{op="stats",le="+Inf"} 1
dewrite_serve_request_latency_ns_sum{op="stats"} 400
dewrite_serve_request_latency_ns_count{op="stats"} 1
`

func TestRenderServeDashboard(t *testing.T) {
	sc, err := parseMetrics(strings.NewReader(serveScrape))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	render(&buf, nil, &frame{at: base, sc: sc}, "test")
	out := buf.String()

	for _, want := range []string{
		"state ready",
		"conns open 3",
		"put", "get", "stats",
		"shard",
		"25.0%",                          // shard 0 occupancy
		"cross-shard dup-hit rate 25.0%", // 25 dup hits / 100 puts
		"42 fingerprints",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// First frame has no rates.
	if !strings.Contains(out, "-") {
		t.Errorf("first frame should render rates as '-':\n%s", out)
	}

	// Second frame 2 s later: put total grew 100 → 200, so 50 req/s.
	grown := strings.Replace(serveScrape,
		`dewrite_serve_requests_total{op="put"} 100`,
		`dewrite_serve_requests_total{op="put"} 200`, 1)
	sc2, err := parseMetrics(strings.NewReader(grown))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	render(&buf, &frame{at: base, sc: sc}, &frame{at: base.Add(2 * time.Second), sc: sc2}, "test")
	if !strings.Contains(buf.String(), "50") {
		t.Errorf("second frame missing the 50 req/s put rate:\n%s", buf.String())
	}
}

func TestRenderGaugeFallback(t *testing.T) {
	const text = `# TYPE dewrite_engine_jobs_total gauge
dewrite_engine_jobs_total 12
# TYPE dewrite_engine_jobs_done gauge
dewrite_engine_jobs_done 4
# TYPE dewrite_engine_jobs_active gauge
dewrite_engine_jobs_active 2
# TYPE dewrite_engine_workers gauge
dewrite_engine_workers 8
# TYPE dewrite_engine_jobs_per_sec gauge
dewrite_engine_jobs_per_sec 0.5
# TYPE dewrite_engine_eta_seconds gauge
dewrite_engine_eta_seconds 16
# TYPE dewrite_mcf_dewrite_dup_eliminated gauge
dewrite_mcf_dewrite_dup_eliminated 512
`
	sc, err := parseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	render(&buf, nil, &frame{at: time.Now(), sc: sc}, "test")
	out := buf.String()
	for _, want := range []string{"engine 4/12 jobs done", "eta 16s", "dewrite_mcf_dewrite_dup_eliminated", "512"} {
		if !strings.Contains(out, want) {
			t.Errorf("fallback view missing %q:\n%s", want, out)
		}
	}
}

func TestFetchAgainstHTTP(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(serveScrape))
	}))
	defer ts.Close()
	f, err := fetch(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if f.sc.value("dewrite_serve_ready") != 1 {
		t.Fatal("fetched scrape did not parse")
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, err := fetch(bad.URL); err == nil {
		t.Fatal("fetch accepted a 500")
	}
}

func TestScrapeRetryBackoff(t *testing.T) {
	if got := nextBackoff(2 * time.Second); got != 4*time.Second {
		t.Fatalf("nextBackoff(2s) = %v", got)
	}
	if got := nextBackoff(20 * time.Second); got != maxBackoff {
		t.Fatalf("nextBackoff(20s) = %v, want cap %v", got, maxBackoff)
	}
	if got := nextBackoff(maxBackoff); got != maxBackoff {
		t.Fatalf("nextBackoff at cap = %v", got)
	}
}

func TestStaleBanner(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 10, 0, time.UTC)
	err := fmt.Errorf("connection refused")

	// No frame ever fetched.
	if got := staleBanner(nil, now, err, 4*time.Second); !strings.Contains(got, "no data yet") ||
		!strings.Contains(got, "connection refused") || !strings.Contains(got, "retrying in 4s") {
		t.Fatalf("cold banner = %q", got)
	}
	// Last good frame 10 s ago: banner shows the data's age.
	last := &frame{at: now.Add(-10 * time.Second)}
	if got := staleBanner(last, now, err, 8*time.Second); !strings.Contains(got, "data 10s old") {
		t.Fatalf("stale banner = %q", got)
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtNs(1500); got != "1.5µs" {
		t.Fatalf("fmtNs(1500) = %q", got)
	}
	if got := fmtNs(2.5e9); got != "2.50s" {
		t.Fatalf("fmtNs = %q", got)
	}
	if got := fmtNum(1234567); got != "1.2M" {
		t.Fatalf("fmtNum = %q", got)
	}
	if got := fmtNum(math.NaN()); got != "-" {
		t.Fatalf("fmtNum(NaN) = %q", got)
	}
}

// dewrite-top is a terminal dashboard for a running dewrite-serve daemon (or
// any process exposing an internal/monitor registry, e.g. dewrite-sim
// -monitor): it polls /metrics, takes counter deltas between scrapes, and
// renders request rates, latency quantiles interpolated from the native
// histogram buckets, per-shard balance, and the dedup evidence.
//
// Usage:
//
//	dewrite-top [-addr localhost:9420] [-interval 2s] [-once]
//
// Against dewrite-serve the dashboard shows the full RED view; against a
// batch CLI's monitor endpoint (no serve_ metrics) it falls back to the
// engine progress block and a live gauge table.
//
// A failed scrape does not kill the dashboard: the last good frame stays on
// screen under a STALE banner showing the age of the data and the error,
// while retries back off exponentially (capped at 30s) until the endpoint
// answers again — daemons restart, dashboards should ride it out. -once
// keeps the old single-shot contract: one try, exit nonzero on failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// frame is one scrape with its arrival time.
type frame struct {
	at time.Time
	sc *scrape
}

func fetch(url string) (*frame, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	sc, err := parseMetrics(resp.Body)
	if err != nil {
		return nil, err
	}
	return &frame{at: time.Now(), sc: sc}, nil
}

// rate returns the per-second delta of a counter (or monotone gauge) between
// two frames; with no previous frame it returns NaN.
func rate(prev, cur *frame, name string, kv ...string) float64 {
	if prev == nil {
		return math.NaN()
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return math.NaN()
	}
	d := cur.sc.value(name, kv...) - prev.sc.value(name, kv...)
	return d / dt
}

func fmtNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

// fmtNs renders a nanosecond quantity human-readably.
func fmtNs(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

// shardIDs enumerates the shard label values of a family, numerically sorted.
func shardIDs(sc *scrape, name string) []string {
	seen := map[string]bool{}
	var ids []string
	for _, i := range sc.byName[name] {
		if id := sc.samples[i].label("shard"); id != "" && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		x, _ := strconv.Atoi(ids[a])
		y, _ := strconv.Atoi(ids[b])
		return x < y
	})
	return ids
}

// render draws one dashboard frame. prev may be nil (first frame: rates show
// as "-", quantiles come from the cumulative histograms).
func render(w io.Writer, prev, cur *frame, source string) {
	sc := cur.sc
	serving := len(sc.byName["dewrite_serve_requests_total"]) > 0

	fmt.Fprintf(w, "dewrite-top — %s — %s\n", source, cur.at.Format("15:04:05"))
	if !serving {
		renderGauges(w, prev, cur)
		return
	}

	ready := "NOT READY"
	if sc.value("dewrite_serve_ready") == 1 {
		ready = "ready"
	}
	fmt.Fprintf(w, "state %s   conns open %s   advances %s (%s/s)\n",
		ready,
		fmtNum(sc.value("dewrite_serve_connections_open")),
		fmtNum(sc.value("dewrite_serve_advances_total")),
		fmtNum(rate(prev, cur, "dewrite_serve_advances_total")))

	// RED block: per-op rate and latency quantiles from the interval
	// histogram (cumulative on the first frame).
	fmt.Fprintf(w, "\n%-6s %10s %10s %10s %10s %10s\n", "op", "req/s", "total", "p50", "p95", "p99")
	for _, op := range []string{"put", "get", "stats"} {
		h := sc.histogram("dewrite_serve_request_latency_ns", "op", op)
		if prev != nil {
			h = h.sub(prev.sc.histogram("dewrite_serve_request_latency_ns", "op", op))
		}
		fmt.Fprintf(w, "%-6s %10s %10s %10s %10s %10s\n", op,
			fmtNum(rate(prev, cur, "dewrite_serve_requests_total", "op", op)),
			fmtNum(sc.value("dewrite_serve_requests_total", "op", op)),
			fmtNs(h.quantile(0.50)), fmtNs(h.quantile(0.95)), fmtNs(h.quantile(0.99)))
	}
	if errs := totalFamily(sc, "dewrite_serve_errors_total"); errs > 0 {
		fmt.Fprintf(w, "errors %s total\n", fmtNum(errs))
	}

	// Shard balance: ops, queueing, capacity, barrier pressure, dedup.
	fmt.Fprintf(w, "\n%-6s %10s %10s %7s %7s %12s %10s %10s\n",
		"shard", "puts", "gets", "queue", "occ%", "stall ms/s", "publishes", "dup hits")
	var puts, dups float64
	for _, id := range shardIDs(sc, "dewrite_serve_puts") {
		p := sc.value("dewrite_serve_puts", "shard", id)
		d := sc.value("dewrite_serve_cross_shard_dup_hits", "shard", id)
		puts += p
		dups += d
		stall := rate(prev, cur, "dewrite_serve_barrier_stall_ns_total", "shard", id) / 1e6
		fmt.Fprintf(w, "%-6s %10s %10s %7s %6.1f%% %12s %10s %10s\n", id,
			fmtNum(p),
			fmtNum(sc.value("dewrite_serve_gets", "shard", id)),
			fmtNum(sc.value("dewrite_serve_queue_depth", "shard", id)),
			100*sc.value("dewrite_serve_occupancy", "shard", id),
			fmtNum(stall),
			fmtNum(sc.value("dewrite_serve_directory_publishes", "shard", id)),
			fmtNum(d))
	}
	if puts > 0 {
		fmt.Fprintf(w, "\ncross-shard dup-hit rate %.1f%%   directory: %s fingerprints, %s shared\n",
			100*dups/puts,
			fmtNum(sc.value("dewrite_serve_directory_fingerprints")),
			fmtNum(sc.value("dewrite_serve_directory_shared")))
	}
}

// totalFamily sums every series of one family (e.g. all error causes).
func totalFamily(sc *scrape, name string) float64 {
	var total float64
	for _, i := range sc.byName[name] {
		total += sc.samples[i].value
	}
	return total
}

// renderGauges is the fallback view for batch CLIs (dewrite-sim -monitor):
// the engine progress block when present, then a live gauge table.
func renderGauges(w io.Writer, prev, cur *frame) {
	sc := cur.sc
	if total := sc.value("dewrite_engine_jobs_total"); !math.IsNaN(total) {
		fmt.Fprintf(w, "engine %s/%s jobs done, %s active, %s workers, %s jobs/s, eta %ss\n",
			fmtNum(sc.value("dewrite_engine_jobs_done")), fmtNum(total),
			fmtNum(sc.value("dewrite_engine_jobs_active")),
			fmtNum(sc.value("dewrite_engine_workers")),
			fmtNum(sc.value("dewrite_engine_jobs_per_sec")),
			fmtNum(sc.value("dewrite_engine_eta_seconds")))
	}
	const maxRows = 40
	var names []string
	for name, typ := range sc.types {
		if typ == "gauge" && !strings.HasPrefix(name, "dewrite_engine_") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%-56s %14s %14s\n", "gauge", "value", "Δ/s")
	rows := 0
	for _, name := range names {
		for _, i := range sc.byName[name] {
			if rows >= maxRows {
				fmt.Fprintf(w, "… %d more\n", len(names)-rows)
				return
			}
			s := sc.samples[i]
			id := name
			if len(s.labels) > 0 {
				id += labelSuffix(s.labels)
			}
			var kv []string
			for k, v := range s.labels {
				kv = append(kv, k, v)
			}
			fmt.Fprintf(w, "%-56s %14s %14s\n", id, fmtNum(s.value), fmtNum(rate(prev, cur, name, kv...)))
			rows++
		}
	}
}

func labelSuffix(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// maxBackoff caps the retry schedule for failed scrapes.
const maxBackoff = 30 * time.Second

// nextBackoff doubles a retry delay up to maxBackoff.
func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// staleBanner renders the warning line shown while scrapes are failing:
// how old the on-screen data is (or that none was ever fetched), what went
// wrong, and when the next retry fires.
func staleBanner(last *frame, now time.Time, err error, retryIn time.Duration) string {
	age := "no data yet"
	if last != nil {
		age = fmt.Sprintf("data %s old", now.Sub(last.at).Round(time.Second))
	}
	return fmt.Sprintf("STALE — %s — scrape failed: %v (retrying in %s)", age, err, retryIn.Round(time.Second))
}

func main() {
	addr := flag.String("addr", "localhost:9420", "monitor endpoint host:port (dewrite-serve -metrics or dewrite-sim -monitor)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	flag.Parse()

	url := fmt.Sprintf("http://%s/metrics", *addr)
	var prev, last *frame
	backoff := *interval
	for {
		cur, err := fetch(url)
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "dewrite-top: %v\n", err)
				os.Exit(1)
			}
			// Keep the last good frame on screen under the stale banner and
			// back off; the daemon may just be restarting.
			fmt.Print("\x1b[H\x1b[2J")
			fmt.Println(staleBanner(last, time.Now(), err, backoff))
			if last != nil {
				render(os.Stdout, prev, last, url)
			}
			time.Sleep(backoff)
			backoff = nextBackoff(backoff)
			continue
		}
		backoff = *interval // healthy again: reset the schedule
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		render(os.Stdout, prev, cur, url)
		if *once {
			return
		}
		prev, last = cur, cur
		time.Sleep(*interval)
	}
}

package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition parser — just enough to read back what
// internal/monitor writes (TYPE comments, optionally-labeled samples with
// escaped label values) without any dependency. Unknown comment lines are
// skipped, so the parser also tolerates scrapes with HELP lines from other
// exporters.

// sample is one parsed metric sample.
type sample struct {
	name   string
	labels map[string]string // nil when unlabeled
	value  float64
}

// label returns a label value ("" when absent).
func (s sample) label(key string) string { return s.labels[key] }

// scrape is one parsed /metrics payload.
type scrape struct {
	types   map[string]string // family → gauge | counter | histogram
	samples []sample
	byName  map[string][]int // sample name → indices, in exposition order
}

func parseMetrics(r io.Reader) (*scrape, error) {
	sc := &scrape{types: make(map[string]string), byName: make(map[string][]int)}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 64*1024), 1<<20)
	ln := 0
	for br.Scan() {
		ln++
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
				sc.types[f[2]] = f[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		sc.byName[s.name] = append(sc.byName[s.name], len(sc.samples))
		sc.samples = append(sc.samples, s)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseSample(line string) (sample, error) {
	s := sample{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		var err error
		s.labels, rest, err = parseLabels(rest[i:])
		if err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest)
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.name, rest = rest[:sp], rest[sp+1:]
	}
	// The value is the first field after the name/labels; a trailing
	// timestamp (optional per the format) is ignored.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.value = v
	return s, nil
}

// parseLabels consumes a {key="value",...} block (value escapes per the
// exposition format) and returns the map plus the remainder of the line.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block in %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
	}
}

// value returns the single sample for name matching every given key=value
// constraint (NaN when absent) — gauges and counters.
func (sc *scrape) value(name string, kv ...string) float64 {
	for _, i := range sc.byName[name] {
		if matches(sc.samples[i], kv) {
			return sc.samples[i].value
		}
	}
	return math.NaN()
}

func matches(s sample, kv []string) bool {
	for j := 0; j+1 < len(kv); j += 2 {
		if s.label(kv[j]) != kv[j+1] {
			return false
		}
	}
	return true
}

// hist is one histogram series read back from its _bucket samples: ascending
// upper bounds with cumulative counts (the +Inf bucket last).
type hist struct {
	les []float64
	cum []float64
}

// histogram collects the named family's series matching the constraints.
func (sc *scrape) histogram(family string, kv ...string) hist {
	var h hist
	for _, i := range sc.byName[family+"_bucket"] {
		s := sc.samples[i]
		if !matches(s, kv) {
			continue
		}
		le := s.label("le")
		var lev float64
		if le == "+Inf" {
			lev = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			lev = v
		}
		h.les = append(h.les, lev)
		h.cum = append(h.cum, s.value)
	}
	sort.Sort(&h)
	return h
}

func (h *hist) Len() int           { return len(h.les) }
func (h *hist) Less(i, j int) bool { return h.les[i] < h.les[j] }
func (h *hist) Swap(i, j int) {
	h.les[i], h.les[j] = h.les[j], h.les[i]
	h.cum[i], h.cum[j] = h.cum[j], h.cum[i]
}

// count returns the series' total observation count (the +Inf bucket).
func (h hist) count() float64 {
	if len(h.cum) == 0 {
		return 0
	}
	return h.cum[len(h.cum)-1]
}

// sub returns the interval histogram h − prev (bucket-wise), the live view
// between two scrapes. Mismatched shapes fall back to the cumulative h.
func (h hist) sub(prev hist) hist {
	if len(prev.cum) != len(h.cum) {
		return h
	}
	out := hist{les: h.les, cum: make([]float64, len(h.cum))}
	for i := range h.cum {
		d := h.cum[i] - prev.cum[i]
		if d < 0 { // counter reset (daemon restarted): show cumulative
			return h
		}
		out.cum[i] = d
	}
	return out
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the covering bucket, the standard histogram_quantile estimate. The
// +Inf bucket clamps to the highest finite bound. NaN when empty.
func (h hist) quantile(q float64) float64 {
	total := h.count()
	if total == 0 || len(h.les) == 0 {
		return math.NaN()
	}
	target := q * total
	for i, c := range h.cum {
		if c < target {
			continue
		}
		upper := h.les[i]
		if math.IsInf(upper, 1) {
			if i == 0 {
				return math.NaN()
			}
			return h.les[i-1]
		}
		lower, prev := 0.0, 0.0
		if i > 0 {
			lower, prev = h.les[i-1], h.cum[i-1]
		}
		if c == prev {
			return upper
		}
		return lower + (upper-lower)*(target-prev)/(c-prev)
	}
	return h.les[len(h.les)-1]
}

package main

import (
	"testing"

	"dewrite/internal/sim"
)

func TestResolveProfile(t *testing.T) {
	p, err := resolveProfile("lbm")
	if err != nil || p.Name != "lbm" {
		t.Fatalf("lbm: %v %v", p.Name, err)
	}
	wc, err := resolveProfile("worstcase")
	if err != nil || wc.DupRatio != 0 {
		t.Fatalf("worstcase: %+v %v", wc, err)
	}
	if _, err := resolveProfile("doom"); err == nil {
		t.Fatal("expected error")
	}
}

func TestResolveScheme(t *testing.T) {
	for name, want := range map[string]sim.Scheme{
		"dewrite": sim.SchemeDeWrite, "DeWrite": sim.SchemeDeWrite,
		"SECURENVM": sim.SchemeSecureNVM, "shredder": sim.SchemeShredder,
	} {
		got, err := resolveScheme(name)
		if err != nil || got != want {
			t.Fatalf("%s: %v %v", name, got, err)
		}
	}
	if _, err := resolveScheme("magic"); err == nil {
		t.Fatal("expected error")
	}
}

func TestResolveCustomProfile(t *testing.T) {
	p, err := resolveProfile("custom")
	if err != nil || p.Name != "custom" {
		t.Fatalf("custom: %+v %v", p, err)
	}
}

func TestApplyOverrides(t *testing.T) {
	base, _ := resolveProfile("custom")
	got := applyOverrides(base, overrides{dup: 0.9, zero: 0.2, writeFrac: 0.3,
		memGap: 50, workset: 4096, threads: 4})
	if got.DupRatio != 0.9 || got.ZeroRatio != 0.2 || got.WriteFrac != 0.3 ||
		got.MemGap != 50 || got.WorkingSetLines != 4096 || got.Threads != 4 {
		t.Fatalf("overrides not applied: %+v", got)
	}
	// Sentinels leave fields untouched.
	same := applyOverrides(base, overrides{dup: -1, zero: -1, writeFrac: -1, memGap: -1})
	if same.DupRatio != base.DupRatio || same.ZeroRatio != base.ZeroRatio ||
		same.WriteFrac != base.WriteFrac || same.MemGap != base.MemGap ||
		same.WorkingSetLines != base.WorkingSetLines || same.Threads != base.Threads {
		t.Fatalf("sentinels modified the profile: %+v", same)
	}
}

// Command dewrite-sim runs one application workload against one secure-NVM
// scheme and prints a detailed report.
//
// Usage:
//
//	dewrite-sim -app lbm -scheme dewrite
//	dewrite-sim -app blackscholes -scheme securenvm -requests 50000
//	dewrite-sim -apps                      # list application profiles
//	dewrite-sim -app mcf -scheme dewrite -hierarchy   # CPU caches in front
//	dewrite-sim -app lbm -scheme dewrite -trace t.json   # Perfetto trace
//	dewrite-sim -app lbm -scheme dewrite -json           # report as JSON
//	dewrite-sim -app lbm,mcf -scheme dewrite,securenvm -parallel 4
//	                                       # fan the grid across workers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dewrite/internal/attr"
	"dewrite/internal/cache"
	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/experiments"
	"dewrite/internal/fault"
	"dewrite/internal/monitor"
	"dewrite/internal/sim"
	"dewrite/internal/telemetry"
	"dewrite/internal/timeline"
	"dewrite/internal/units"
	"dewrite/internal/workload"
)

var schemes = map[string]sim.Scheme{
	"dewrite":   sim.SchemeDeWrite,
	"direct":    sim.SchemeDirect,
	"parallel":  sim.SchemeParallel,
	"securenvm": sim.SchemeSecureNVM,
	"shredder":  sim.SchemeShredder,
}

// resolveProfile maps an application name ("worstcase" and "custom" are
// synthetic; "custom" starts from a neutral mid-range profile meant to be
// shaped with the override flags) to its profile.
func resolveProfile(app string) (workload.Profile, error) {
	switch app {
	case "worstcase":
		return workload.WorstCase(), nil
	case "custom":
		return workload.Profile{
			Name: "custom", Suite: "SYNTH",
			DupRatio: 0.5, ZeroRatio: 0.1, StateSame: 0.92,
			WriteFrac: 0.5, WorkingSetLines: 1 << 14, Locality: 0.8,
			RewriteWords: 6, Threads: 1, MemGap: 30,
		}, nil
	}
	prof, ok := workload.ByName(app)
	if !ok {
		return workload.Profile{}, fmt.Errorf("unknown app %q", app)
	}
	return prof, nil
}

// overrides carries the optional profile-field overrides; negative or zero
// sentinel values mean "keep the profile's value".
type overrides struct {
	dup, zero, writeFrac, memGap float64
	workset                      uint64
	threads                      int
}

// applyOverrides returns prof with any explicitly set override applied.
func applyOverrides(prof workload.Profile, o overrides) workload.Profile {
	if o.dup >= 0 {
		prof.DupRatio = o.dup
	}
	if o.zero >= 0 {
		prof.ZeroRatio = o.zero
	}
	if o.writeFrac >= 0 {
		prof.WriteFrac = o.writeFrac
	}
	if o.memGap >= 0 {
		prof.MemGap = o.memGap
	}
	if o.workset > 0 {
		prof.WorkingSetLines = o.workset
	}
	if o.threads > 0 {
		prof.Threads = o.threads
	}
	return prof
}

// resolveScheme maps a scheme name to its identifier, case-insensitively.
func resolveScheme(name string) (sim.Scheme, error) {
	sch, ok := schemes[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
	return sch, nil
}

func main() {
	var (
		app       = flag.String("app", "lbm", "application profile(s), comma-separated (or 'worstcase')")
		scheme    = flag.String("scheme", "dewrite", "scheme(s), comma-separated: dewrite|direct|parallel|securenvm|shredder")
		parallel  = flag.Int("parallel", 0, "worker goroutines for multi-run grids (<1 = GOMAXPROCS)")
		requests  = flag.Int("requests", 30000, "memory requests to drive")
		warmup    = flag.Int("warmup", 6000, "warmup requests excluded from measurement")
		seed      = flag.Uint64("seed", 42, "workload seed")
		listApps  = flag.Bool("apps", false, "list application profiles and exit")
		hierarchy = flag.Bool("hierarchy", false, "interpose the 4-level CPU cache hierarchy")

		jsonOut    = flag.Bool("json", false, "emit the full report as one JSON object on stdout")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		metricsCSV = flag.String("metrics", "", "write the counter time series as CSV")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address (e.g. localhost:6060)")

		faultsFile = flag.String("faults", "", "fault-injection config as a JSON file (see internal/fault.Config)")
		endurance  = flag.Uint64("endurance", 0, "mean per-line write endurance (0 = no wear-out faults)")
		readBER    = flag.Float64("ber", 0, "transient bit-error probability per array read")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for the fault injector (independent of -seed)")
		crashAt    = flag.Uint64("crash-at", 0, "cut power after this many requests (1-based), recover, and finish the run")

		attrOn     = flag.Bool("attr", false, "attribute request latency to phases and line writes to causes")
		attrSample = flag.Int("attr-sample", attr.DefaultSamplePeriod, "causal-tracing sample period: trace every Nth request")
		attrFolded = flag.String("attr-folded", "", "write sampled phase totals as flamegraph folded stacks (single run, implies -attr)")
		attrCSV    = flag.String("attr-csv", "", "write the write-provenance ledger as CSV (single run, implies -attr)")

		epochEvery  = flag.Uint64("epoch", 0, "timeline epoch size in requests (0 = requests/64)")
		timelineCSV = flag.String("timeline-csv", "", "write the epoch time series as CSV (single run)")
		heatmapOut  = flag.String("heatmap", "", "write the per-bank wear heatmap as CSV (single run)")
		monitorAddr = flag.String("monitor", "", "serve live gauges (/metrics, /healthz, /debug/vars) on this address (e.g. :8080)")

		// Custom-profile overrides: set -app custom (or override a named
		// profile's fields individually).
		dupRatio  = flag.Float64("dup", -1, "override duplicate-write ratio [0,1]")
		zeroRatio = flag.Float64("zero", -1, "override zero-line ratio [0,1]")
		writeFrac = flag.Float64("writefrac", -1, "override write fraction of memory requests")
		workset   = flag.Uint64("workset", 0, "override working-set lines")
		threads   = flag.Int("threads", 0, "override hardware thread count")
		memgap    = flag.Float64("memgap", -1, "override mean instructions between memory requests")
	)
	flag.Parse()

	if *listApps {
		for _, p := range workload.Profiles() {
			fmt.Println(p.String())
		}
		fmt.Println(workload.WorstCase().String())
		return
	}

	var profs []workload.Profile
	for _, name := range strings.Split(*app, ",") {
		prof, err := resolveProfile(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: %v (use -apps)\n", err)
			os.Exit(2)
		}
		profs = append(profs, applyOverrides(prof, overrides{
			dup: *dupRatio, zero: *zeroRatio, writeFrac: *writeFrac,
			workset: *workset, threads: *threads, memGap: *memgap,
		}))
	}
	var schs []sim.Scheme
	for _, name := range strings.Split(*scheme, ",") {
		sch, err := resolveScheme(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: %v\n", err)
			os.Exit(2)
		}
		schs = append(schs, sch)
	}

	// The run grid, in canonical (app-major, scheme-minor) order. Reports are
	// printed in this order no matter how the runs are scheduled.
	type job struct {
		prof workload.Profile
		sch  sim.Scheme
	}
	var jobs []job
	for _, prof := range profs {
		for _, sch := range schs {
			jobs = append(jobs, job{prof, sch})
		}
	}
	single := len(jobs) == 1
	if !single && (*traceOut != "" || *metricsCSV != "" || *timelineCSV != "" || *heatmapOut != "" ||
		*attrFolded != "" || *attrCSV != "") {
		fmt.Fprintf(os.Stderr, "dewrite-sim: -trace/-metrics/-timeline-csv/-heatmap/-attr-folded/-attr-csv need a single (app, scheme) run\n")
		os.Exit(2)
	}
	enableAttr := *attrOn || *attrFolded != "" || *attrCSV != ""
	if enableAttr && *attrSample < 1 {
		fmt.Fprintf(os.Stderr, "dewrite-sim: -attr-sample must be >= 1\n")
		os.Exit(2)
	}

	cfg := config.Default()
	cfg.NVM.Ranks = 2
	cfg.NVM.BanksPerRank = 4

	// Fault model: a -faults JSON file sets the base config; the individual
	// flags override its fields.
	var fcfg fault.Config
	if *faultsFile != "" {
		data, err := os.ReadFile(*faultsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: faults: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(data, &fcfg); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: faults: %s: %v\n", *faultsFile, err)
			os.Exit(2)
		}
	}
	if fcfg.Seed == 0 || *faultSeed != 1 {
		fcfg.Seed = *faultSeed
	}
	if *endurance != 0 {
		fcfg.Endurance = *endurance
	}
	if *readBER != 0 {
		fcfg.ReadBER = *readBER
	}
	if *crashAt > uint64(*requests) {
		fmt.Fprintf(os.Stderr, "dewrite-sim: -crash-at %d is beyond -requests %d\n", *crashAt, *requests)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		addr, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dewrite-sim: pprof at http://%s/debug/pprof/\n", addr)
	}

	var tracer *telemetry.Tracer
	if *traceOut != "" || *metricsCSV != "" {
		tracer = telemetry.New(telemetry.DefaultMaxEvents)
	}

	var reg *monitor.Registry
	if *monitorAddr != "" {
		reg = monitor.NewRegistry()
		msrv, err := monitor.Serve(*monitorAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: monitor: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		prev := experiments.SetProgress(reg.Progress())
		defer experiments.SetProgress(prev)
		fmt.Fprintf(os.Stderr, "dewrite-sim: monitor at http://%s/metrics\n", msrv.Addr())
	}

	every := *epochEvery
	if every == 0 {
		every = uint64(*requests) / 64
		if every == 0 {
			every = 1
		}
	}

	// Every job is hermetic (own memory, own seeded stream, own timeline
	// collector), so the grid fans out across workers while results land in
	// canonical-order slots.
	mems := make([]sim.Memory, len(jobs))
	results := make([]sim.Result, len(jobs))
	recs := make([]*attr.Recorder, len(jobs))
	experiments.ForEach(*parallel, len(jobs), func(i int) {
		j := jobs[i]
		tl := timeline.NewByRequests(every, 0)
		prefix := j.prof.Name + "/" + j.sch.String()
		if reg != nil {
			tl.OnEpoch = func(e *timeline.Epoch) { reg.PublishEpoch(prefix, e) }
		}
		opts := sim.Options{
			Requests: *requests, Warmup: *warmup, Seed: *seed,
			Tracer: tracer, Timeline: tl,
			Faults: fcfg, CrashAt: *crashAt,
		}
		if enableAttr {
			// One recorder per job: the sampling counter is recorder-local,
			// so which requests get traced is independent of -parallel.
			recs[i] = attr.NewRecorder(*attrSample, *seed)
			opts.Attr = recs[i]
		}
		if *hierarchy {
			opts.Hierarchy = cache.NewHierarchy(cfg.Hierarchy)
		}
		mem := sim.NewMemoryWith(j.sch, j.prof.WorkingSetLines, cfg, fcfg, *crashAt != 0)
		results[i] = sim.Run(j.prof.Name, j.sch.String(), mem, j.prof, opts)
		mems[i] = results[i].FinalMemory()
		if reg != nil {
			reg.PublishAttribution(prefix, results[i].Attribution)
		}
	})

	if *traceOut != "" {
		if err := writeFileWith(*traceOut, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dewrite-sim: wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
	if *metricsCSV != "" {
		if err := writeFileWith(*metricsCSV, tracer.WriteMetricsCSV); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *timelineCSV != "" {
		if err := writeFileWith(*timelineCSV, results[0].Timeline.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: timeline: %v\n", err)
			os.Exit(1)
		}
	}
	if *heatmapOut != "" {
		if err := writeFileWith(*heatmapOut, results[0].Timeline.WriteWearHeatmapCSV); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: heatmap: %v\n", err)
			os.Exit(1)
		}
	}
	if *attrFolded != "" {
		if err := writeFileWith(*attrFolded, recs[0].WriteFolded); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: attr-folded: %v\n", err)
			os.Exit(1)
		}
	}
	if *attrCSV != "" {
		if err := writeFileWith(*attrCSV, recs[0].WriteProvenanceCSV); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-sim: attr-csv: %v\n", err)
			os.Exit(1)
		}
	}

	for i := range jobs {
		if *jsonOut {
			// One report object per run, streamed in canonical order.
			if err := sim.NewRunReport(results[i], mems[i]).WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "dewrite-sim: json: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		printText(results[i], jobs[i].prof, mems[i])
	}
}

// printText writes the human-readable report of one run to stdout.
func printText(res sim.Result, prof workload.Profile, mem sim.Memory) {
	fmt.Printf("app           %s (%s)\n", res.App, prof.Suite)
	fmt.Printf("scheme        %s\n", res.Scheme)
	fmt.Printf("requests      %d measured (writes %d, reads %d)\n", res.Requests, res.MemWrites, res.MemReads)
	fmt.Printf("ground truth  %.1f%% duplicate writes, %.1f%% zero lines\n",
		pct(res.Gen.Duplicates, res.Gen.Writes), pct(res.Gen.ZeroWrites, res.Gen.Writes))
	fmt.Printf("write latency mean %v, p50 %v, p95 %v, p99 %v (sum %v)\n",
		res.MeanWriteLat, res.P50WriteLat, res.P95WriteLat, res.P99WriteLat, res.WriteLatSum)
	fmt.Printf("read latency  mean %v, p50 %v, p95 %v, p99 %v (sum %v)\n",
		res.MeanReadLat, res.P50ReadLat, res.P95ReadLat, res.P99ReadLat, res.ReadLatSum)
	fmt.Printf("IPC           %.3f (%d instructions, %d cycles)\n", res.IPC, res.Instructions, res.Cycles)
	fmt.Printf("device        %d reads (%d row hits), %d writes\n",
		res.Device.Reads, res.Device.RowHits, res.Device.Writes)
	fmt.Printf("energy        %.1f uJ\n", res.EnergyPJ/1e6)
	fmt.Printf("bit flips     %.1f%% of written cells\n", pct(res.Device.BitsFlipped, res.Device.BitsWritten))
	if tl := res.Timeline; tl != nil && len(tl.Epochs) > 0 {
		last := tl.Epochs[len(tl.Epochs)-1]
		fmt.Printf("timeline      %d epochs (every %d %s): final max wear %d, Gini %.3f\n",
			len(tl.Epochs), tl.Every, tl.EpochBy, last.WearMax, last.WearGini)
	}
	if dev := sim.DeviceOf(mem); dev != nil && dev.FaultsEnabled() {
		fs := dev.FaultStats()
		fmt.Printf("faults        %d worn writes: %d ECP-corrected, %d remapped (%d/%d spares), %d stuck; %d transient flips, %d banks retired\n",
			fs.WornWrites, fs.ECPCorrections, fs.Remaps, fs.SpareUsed, fs.SpareLines,
			fs.StuckLines, fs.TransientBitFlips, fs.BanksRetired)
	}
	if rep := res.Crash; rep != nil {
		fmt.Printf("crash         at request %d: %d dirty meta lines lost; mappings %d lost, %d stale, %d dangling; %d divergent locations, %d refcounts repaired\n",
			rep.CrashedAt, rep.DirtyMetaLines, rep.LostMappings, rep.StaleMappings,
			rep.DanglingMappings, rep.DivergentLocations, rep.RefcountMismatches)
		fmt.Printf("recovery      %d mappings over %d live locations recovered, %d lines poisoned\n",
			rep.RecoveredMappings, rep.LiveLocations, rep.PoisonedLines)
	}

	if a := res.Attribution; a != nil {
		fmt.Printf("\nattribution (sample period %d):\n", a.SamplePeriod)
		fmt.Printf("  provenance           %d line writes, %.1f uJ\n", a.TotalLineWrites, a.EnergyPJ/1e6)
		for _, c := range a.Causes {
			if c.Writes == 0 {
				continue
			}
			fmt.Printf("    %-12s %10d writes (%.1f%%)\n", c.Cause, c.Writes, pct(c.Writes, a.TotalLineWrites))
		}
		fmt.Printf("  sampled              %d writes (%v), %d reads (%v)\n",
			a.SampledWrites, units.Duration(a.SampledWritePs),
			a.SampledReads, units.Duration(a.SampledReadPs))
		for _, p := range a.Phases {
			den := a.SampledWritePs
			if p.Kind == "read" {
				den = a.SampledReadPs
			}
			fmt.Printf("    %-5s %-13s %8d spans, %5.1f%% of %s time\n",
				p.Kind, p.Phase, p.Count, pct(p.TotalPs, den), p.Kind)
		}
	}

	if ctrl, ok := mem.(*core.Controller); ok {
		r := ctrl.Report()
		fmt.Printf("\ncontroller (%s, whole run including warmup):\n", r.Mode)
		fmt.Printf("  writes eliminated    %d / %d (%.1f%%)\n", r.DupEliminated, r.Writes,
			pct(r.DupEliminated, r.Writes))
		fmt.Printf("  missed by PNA        %d, by saturation %d\n", r.MissedByPNA, r.MissedBySat)
		fmt.Printf("  prediction accuracy  %.1f%%\n", r.PredAccuracy*100)
		fmt.Printf("  AES line ops         %d (%d wasted), metadata ops %d\n",
			r.AESLineOps, r.AESWasted, r.AESMetaOps)
		fmt.Printf("  metadata NVM traffic %d reads, %d writes\n", r.MetaNVMReads, r.MetaNVMWrites)
		fmt.Printf("  dedup state          %d live lines, %d mapped away, %d collisions\n",
			r.Dedup.LiveLines, r.Dedup.MappedAway, r.Dedup.Collisions)
		for _, mc := range ctrl.MetaCaches() {
			fmt.Printf("  %-8s cache       %.2f%% hit rate\n", mc.Name(), mc.HitRate()*100)
		}
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

// writeFileWith creates path and streams write's output into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

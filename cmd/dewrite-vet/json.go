package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"dewrite/internal/lint"
)

// finding is the machine-readable form of one diagnostic, consumed by CI to
// emit per-line annotations.
type finding struct {
	File     string `json:"file"` // relative to root when possible
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// findings converts diagnostics to their JSON form, relativizing file paths
// against root (typically the working directory) so annotations address
// repository paths rather than absolute ones.
func findings(diags []lint.Diagnostic, root string) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		file := d.Position.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && filepath.IsLocal(rel) {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, finding{
			File:     file,
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// writeFindings emits the findings as a JSON array — always an array, "[]"
// when the tree is clean, so consumers can jq it unconditionally.
func writeFindings(w io.Writer, fs []finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"dewrite/internal/lint"
)

func TestFindingsRelativizePaths(t *testing.T) {
	diags := []lint.Diagnostic{
		{
			Analyzer: "lockdiscipline",
			Position: token.Position{Filename: "/repo/cmd/dewrite-serve/server.go", Line: 42, Column: 7},
			Message:  "return leaves s.connMu locked",
		},
		{
			Analyzer: "booksbalance",
			Position: token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1},
			Message:  "the books lose a response",
		},
	}
	fs := findings(diags, "/repo")
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2", len(fs))
	}
	if fs[0].File != "cmd/dewrite-serve/server.go" {
		t.Errorf("in-root path not relativized: %q", fs[0].File)
	}
	if fs[0].Line != 42 || fs[0].Col != 7 || fs[0].Analyzer != "lockdiscipline" {
		t.Errorf("finding fields mangled: %+v", fs[0])
	}
	if fs[1].File != "/elsewhere/x.go" {
		t.Errorf("out-of-root path must stay absolute, got %q", fs[1].File)
	}
}

func TestWriteFindingsEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFindings(&buf, findings(nil, "")); err != nil {
		t.Fatalf("writeFindings: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("clean run must emit an empty JSON array, got %q", got)
	}
}

func TestWriteFindingsRoundTrips(t *testing.T) {
	in := []finding{{
		File:     "internal/shard/directory.go",
		Line:     10,
		Col:      2,
		Analyzer: "atomichygiene",
		Message:  `hits is accessed with sync/atomic but read plainly: "mixed"`,
	}}
	var buf bytes.Buffer
	if err := writeFindings(&buf, in); err != nil {
		t.Fatalf("writeFindings: %v", err)
	}
	var out []finding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Errorf("round trip mangled the finding: %+v", out)
	}
}

// Command dewrite-vet runs the repository's custom static-analysis suite
// (internal/lint) over Go packages: determinism, poolrecycle, nilsafe and
// reportcompat. It is the multichecker CI runs as a required step.
//
// Usage:
//
//	dewrite-vet [-list] [-only analyzer[,analyzer]] [packages...]
//
// Packages default to ./... resolved in the current module. The exit status
// is 0 when the tree is clean, 1 when any diagnostic fires, 2 on a driver
// or load failure. Justified violations are silenced in place with
// "//dewrite:allow <analyzer> <reason>" on the offending line or the line
// above; see DESIGN.md section 10.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dewrite/internal/lint"
	"dewrite/internal/lint/analysis"
	"dewrite/internal/lint/packages"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dewrite-vet [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		printAnalyzers(os.Stderr)
	}
	flag.Parse()

	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dewrite-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := packages.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dewrite-vet: %v\n", err)
		os.Exit(2)
	}

	bad := false
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-vet: %s: %v\n", pkg.ImportPath, err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad = true
			fmt.Printf("%s\n", d)
		}
	}
	if bad {
		os.Exit(1)
	}
}

func printAnalyzers(w *os.File) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, summaryLine(a))
	}
}

func summaryLine(a *analysis.Analyzer) string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

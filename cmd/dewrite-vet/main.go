// Command dewrite-vet runs the repository's custom static-analysis suite
// (internal/lint) over Go packages: determinism, poolrecycle, nilsafe,
// reportcompat, and the serving layer's concurrency contracts —
// atomichygiene, lockdiscipline, goroutinelifecycle, booksbalance. It is
// the multichecker CI runs as a required step.
//
// Usage:
//
//	dewrite-vet [-list] [-json] [-only analyzer[,analyzer]] [packages...]
//
// Packages default to ./... resolved in the current module. With -json the
// findings are emitted as a JSON array of {file, line, col, analyzer,
// message} objects ("[]" when clean) for CI annotation tooling. The exit
// status is 0 when the tree is clean, 1 when any diagnostic fires, 2 on a
// driver or load failure. Justified violations are silenced in place with
// "//dewrite:allow <analyzer> <reason>" on the offending line or the line
// above; see DESIGN.md sections 10 and 15.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dewrite/internal/lint"
	"dewrite/internal/lint/analysis"
	"dewrite/internal/lint/packages"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dewrite-vet [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		printAnalyzers(os.Stderr)
	}
	flag.Parse()

	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dewrite-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := packages.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dewrite-vet: %v\n", err)
		os.Exit(2)
	}

	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-vet: %s: %v\n", pkg.ImportPath, err)
			os.Exit(2)
		}
		all = append(all, diags...)
	}
	if *jsonOut {
		wd, _ := os.Getwd()
		if err := writeFindings(os.Stdout, findings(all, wd)); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Printf("%s\n", d)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

func printAnalyzers(w *os.File) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, summaryLine(a))
	}
}

func summaryLine(a *analysis.Analyzer) string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestSlowRingKeepsKSlowest(t *testing.T) {
	r := newSlowRing(3, 1000)

	// First k are always admitted.
	for i, lat := range []int64{50, 10, 30} {
		if !r.record(slowEntry{ID: uint64(i + 1), Op: "put", LatencyNs: lat}) {
			t.Fatalf("entry %d not admitted into empty ring", i+1)
		}
	}
	// Faster than the current minimum: rejected.
	if r.record(slowEntry{ID: 4, Op: "get", LatencyNs: 5}) {
		t.Fatal("faster-than-min request admitted to a full ring")
	}
	// Slower than the minimum: replaces it.
	if !r.record(slowEntry{ID: 5, Op: "get", LatencyNs: 40}) {
		t.Fatal("slower-than-min request rejected")
	}

	got := r.snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(got))
	}
	wantLat := []int64{50, 40, 30} // slowest first
	for i, e := range got {
		if e.LatencyNs != wantLat[i] {
			t.Fatalf("snapshot[%d] latency %d, want %d (full: %+v)", i, e.LatencyNs, wantLat[i], got)
		}
	}
}

func TestSlowRingWindowEviction(t *testing.T) {
	r := newSlowRing(2, 100)
	r.record(slowEntry{ID: 1, LatencyNs: 1_000_000}) // the startup outlier
	r.record(slowEntry{ID: 2, LatencyNs: 500})

	// A fast request far past the window evicts both stale entries and is
	// admitted despite being the fastest ever seen.
	if !r.record(slowEntry{ID: 200, LatencyNs: 1}) {
		t.Fatal("request after window expiry not admitted")
	}
	got := r.snapshot()
	if len(got) != 1 || got[0].ID != 200 {
		t.Fatalf("window eviction kept stale entries: %+v", got)
	}
}

func TestSlowRingServeHTTP(t *testing.T) {
	r := newSlowRing(4, 1<<16)
	r.record(slowEntry{ID: 7, Op: "put", Shard: 2, LatencyNs: 1234})
	r.record(slowEntry{ID: 9, Op: "stats", Shard: -1, LatencyNs: 99})

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, nil)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var body struct {
		K       int         `json:"k"`
		Window  uint64      `json:"window"`
		Slowest []slowEntry `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/slow not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if body.K != 4 || body.Window != 1<<16 || len(body.Slowest) != 2 {
		t.Fatalf("body %+v", body)
	}
	if body.Slowest[0].ID != 7 || body.Slowest[0].Op != "put" || body.Slowest[0].Shard != 2 {
		t.Fatalf("slowest entry %+v", body.Slowest[0])
	}
}

func TestSlowRingDegenerateConfig(t *testing.T) {
	r := newSlowRing(0, 0) // clamps to k=1 and the default window
	if r.k != 1 || r.window == 0 {
		t.Fatalf("clamping failed: k=%d window=%d", r.k, r.window)
	}
	r.record(slowEntry{ID: 1, LatencyNs: 10})
	if !r.record(slowEntry{ID: 2, LatencyNs: 20}) {
		t.Fatal("slower entry rejected at k=1")
	}
	if got := r.snapshot(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("k=1 ring: %+v", got)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"dewrite/internal/rng"
)

func startTestServer(t *testing.T, shards int) *Server {
	t.Helper()
	srv, err := NewServer(Config{Shards: shards, Lines: 1 << 12, AdvanceEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestServePutGetRoundTrip covers the framed protocol basics on one stream:
// values round-trip exactly (length prefix, not NUL-trimming), missing keys
// answer NotFound, and oversized values are rejected client-side.
func TestServePutGetRoundTrip(t *testing.T) {
	srv := startTestServer(t, 4)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := []byte("value with trailing zeros\x00\x00")
	if err := c.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.Get("k1")
	if err != nil || !found {
		t.Fatalf("get k1: found=%v err=%v", found, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("get k1 = %q, want %q", got, want)
	}

	if _, found, err = c.Get("absent"); err != nil || found {
		t.Fatalf("get absent: found=%v err=%v", found, err)
	}

	if err := c.Put("big", make([]byte, ValueCap+1)); err == nil {
		t.Fatal("oversized value accepted")
	}

	// Overwrite in place.
	if err := c.Put("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = c.Get("k1")
	if string(got) != "v2" {
		t.Fatalf("after overwrite got %q", got)
	}
}

// TestServeConcurrentStreams is the end-to-end load test: many client
// connections hammer the sharded service concurrently with a securekv-style
// workload (most users share a few preset blobs), every stream verifies its
// own reads, and afterwards the dedup evidence is visible in the gauges —
// shared presets stored once per shard at most, and the cross-shard
// directory populated at the barriers.
func TestServeConcurrentStreams(t *testing.T) {
	const (
		clients = 8
		keys    = 100
	)
	srv := startTestServer(t, 4)

	presets := [][]byte{
		[]byte(`{"theme":"dark","lang":"en","notifications":true}`),
		[]byte(`{"theme":"light","lang":"en","notifications":true}`),
		[]byte(`{"theme":"dark","lang":"de","notifications":false}`),
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			src := rng.New(uint64(cl) + 1)
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("user:%d:%d:config", cl, k)
				var want []byte
				if src.Bool(0.9) {
					want = presets[src.Intn(len(presets))]
				} else {
					want = []byte(fmt.Sprintf(`{"custom":%d}`, src.Uint64()))
				}
				if err := c.Put(key, want); err != nil {
					errs <- fmt.Errorf("client %d put %s: %w", cl, key, err)
					return
				}
				got, found, err := c.Get(key)
				if err != nil || !found || !bytes.Equal(got, want) {
					errs <- fmt.Errorf("client %d readback %s: found=%v err=%v got=%q want=%q",
						cl, key, found, err, got, want)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	srv.Advance() // fold the tail epoch so the gauges are current

	reg := srv.Registry()
	var puts, dup float64
	for i := 0; i < 4; i++ {
		labels := "\x00" + `{shard="` + fmt.Sprint(i) + `"}` // labeled-gauge key form
		puts += reg.Get("serve_puts" + labels)
		dup += reg.Get("serve_shard_" + fmt.Sprint(i) + ".dup_eliminated")
	}
	if puts != clients*keys {
		t.Fatalf("gauges count %v puts, want %d", puts, clients*keys)
	}
	if dup == 0 {
		t.Fatal("preset-heavy workload eliminated no duplicate writes")
	}
	if reg.Get("serve_directory_fingerprints") == 0 {
		t.Fatal("cross-shard directory is empty after advances")
	}

	// The STATS op serves the same snapshot over the wire.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if snap["serve_directory_advances"] == 0 {
		t.Fatalf("stats snapshot missing advances: %v", snap)
	}
}

// TestServeShardFull exercises the capacity error path: a one-line shard
// rejects the second distinct key routed to it with a clean error rather
// than corrupting state.
func TestServeShardFull(t *testing.T) {
	srv, err := NewServer(Config{Shards: 1, Lines: 1, AdvanceEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", []byte("y")); err == nil {
		t.Fatal("second key fit in a one-line shard")
	}
	// The stored key still works.
	got, found, err := c.Get("a")
	if err != nil || !found || string(got) != "x" {
		t.Fatalf("get a after full: %q %v %v", got, found, err)
	}
}

package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strconv"

	"dewrite/internal/chaos"
	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/snapshot"
	"dewrite/internal/units"
)

// Crash-safe serving state. Each snapshot generation carries one payload per
// shard: a serve-level header (the key→line directory and owner counters,
// which live above the controller) followed by the controller's own
// crash-consistent checkpoint (core.SaveState — dedup tables, refcounts,
// encryption counters, wear, line contents). The generation directory
// becomes visible only through snapshot.Writer's atomic rename, so a kill -9
// at any instant leaves either a complete generation or ignorable debris.
//
// Recovery (Recover, run by Serve before the listener opens) loads the
// newest valid generation, rebuilds every shard via core.Restore, and then
// scrubs: dedup-table invariants are checked and every recovered key is read
// back through the integrity-verified path, dropping keys whose lines come
// back poisoned. Only after the scrub does the first Advance publish
// generation zero — /readyz stays 503 throughout.

// shardSnapMagic leads every per-shard payload.
const shardSnapMagic = "DWSV1\n"

// maxShardHeader bounds the serve-level header during recovery, before any
// allocation is sized from hostile bytes.
const maxShardHeader = 64 << 20

// keySlot is one key→line binding in the serve-level header.
type keySlot struct {
	Key  string `json:"key"`
	Slot uint64 `json:"slot"`
}

// shardHeader is the serve-level state above the controller: the shard's key
// directory, allocation cursor, simulated clock, and owner counters. Keys
// are sorted so identical state encodes to identical bytes (the chaos soak
// compares crash recovery against a clean-shutdown reference).
type shardHeader struct {
	Shard    int       `json:"shard"`
	Next     uint64    `json:"next"`
	Now      uint64    `json:"now"`
	Puts     uint64    `json:"puts"`
	Gets     uint64    `json:"gets"`
	Misses   uint64    `json:"misses"`
	Full     uint64    `json:"full"`
	CrossDup uint64    `json:"cross_dup"`
	Total    uint64    `json:"total"`
	Keys     []keySlot `json:"keys"`
}

func shardFileName(id int) string { return "shard-" + strconv.Itoa(id) }

// encodeShard serializes one shard: magic, length-prefixed JSON header, then
// the controller checkpoint. Caller holds the epoch write-lock (the owner is
// parked, so the state is stable; SaveState's metadata flush is safe).
func (s *Server) encodeShard(w *shardWorker) ([]byte, error) {
	hdr := shardHeader{
		Shard:    w.id,
		Next:     w.next,
		Now:      uint64(w.now),
		Puts:     w.puts,
		Gets:     w.gets,
		Misses:   w.misses,
		Full:     w.full,
		CrossDup: w.crossDup,
		Total:    w.total,
		Keys:     make([]keySlot, 0, len(w.slots)),
	}
	for key, slot := range w.slots {
		hdr.Keys = append(hdr.Keys, keySlot{Key: key, Slot: slot})
	}
	sort.Slice(hdr.Keys, func(i, j int) bool { return hdr.Keys[i].Key < hdr.Keys[j].Key })
	hdrBytes, err := json.Marshal(&hdr)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(shardSnapMagic)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(hdrBytes)))
	buf.Write(lenb[:])
	buf.Write(hdrBytes)
	if err := w.ctrl.SaveState(w.now, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeShard splits one payload into its header and the controller
// checkpoint bytes. The payload passed snapshot's CRC check, but the format
// is still validated defensively — a schema skew must error, not panic.
func decodeShard(blob []byte) (shardHeader, []byte, error) {
	var hdr shardHeader
	if len(blob) < len(shardSnapMagic)+4 {
		return hdr, nil, fmt.Errorf("shard payload truncated (%d bytes)", len(blob))
	}
	if string(blob[:len(shardSnapMagic)]) != shardSnapMagic {
		return hdr, nil, fmt.Errorf("bad shard payload magic %q", blob[:len(shardSnapMagic)])
	}
	blob = blob[len(shardSnapMagic):]
	hdrLen := int(binary.BigEndian.Uint32(blob[:4]))
	blob = blob[4:]
	if hdrLen > maxShardHeader || hdrLen > len(blob) {
		return hdr, nil, fmt.Errorf("shard header length %d exceeds payload", hdrLen)
	}
	if err := json.Unmarshal(blob[:hdrLen], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("shard header: %w", err)
	}
	return hdr, blob[hdrLen:], nil
}

// snapMeta is the manifest compatibility block recovery checks before
// trusting any payload.
func (s *Server) snapMeta() map[string]string {
	return map[string]string{
		"shards": strconv.Itoa(s.cfg.Shards),
		"lines":  strconv.FormatUint(s.cfg.Lines, 10),
	}
}

// Snapshot takes one on-demand snapshot under the epoch barrier (owners
// parked, state stable) and reports whether a generation was committed.
func (s *Server) Snapshot() bool {
	if s.cfg.SnapshotDir == "" {
		return false
	}
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	//dewrite:allow lockdiscipline operator-requested snapshots serialize at the barrier by design; ROADMAP item 1 tracks delta snapshots that would move this off the write lock
	return s.snapshotLocked(s.plan)
}

// snapshotLocked writes one generation. Caller holds the epoch write-lock.
// The chaos plan (nil to bypass injection) may abort the generation after a
// prefix of shard files, leaving exactly the debris a kill -9 mid-snapshot
// leaves; the generation number is burned either way, as it would be by a
// real crash-and-restart.
func (s *Server) snapshotLocked(plan *chaos.Plan) bool {
	gen := s.nextSnapGen
	s.nextSnapGen++
	w, err := snapshot.NewWriter(s.cfg.SnapshotDir, gen, s.snapMeta())
	if err != nil {
		s.m.snapshotAborts.Inc()
		s.logEvent(slog.LevelWarn, "snapshot_failed", "generation", gen, "err", err.Error())
		return false
	}
	abortAfter, abort := plan.SnapshotAbort(gen, len(s.shards))
	for i, shard := range s.shards {
		if abort && i == abortAfter {
			w.Abort()
			s.m.snapshotAborts.Inc()
			s.logEvent(slog.LevelInfo, "snapshot_chaos_abort",
				"generation", gen, "files_written", i)
			return false
		}
		blob, err := s.encodeShard(shard)
		if err == nil {
			err = w.Add(shardFileName(shard.id), blob)
		}
		if err != nil {
			w.Abort()
			s.m.snapshotAborts.Inc()
			s.logEvent(slog.LevelWarn, "snapshot_failed",
				"generation", gen, "shard", shard.id, "err", err.Error())
			return false
		}
	}
	if err := w.Commit(); err != nil {
		s.m.snapshotAborts.Inc()
		s.logEvent(slog.LevelWarn, "snapshot_failed", "generation", gen, "err", err.Error())
		return false
	}
	s.m.snapshots.Inc()
	s.m.snapLastGen.Set(float64(gen))
	if err := snapshot.Prune(s.cfg.SnapshotDir, s.cfg.SnapshotKeep); err != nil {
		s.logEvent(slog.LevelWarn, "snapshot_prune_failed", "err", err.Error())
	}
	s.logEvent(slog.LevelInfo, "snapshot_committed", "generation", gen)
	return true
}

// Recover loads the newest valid snapshot generation and rebuilds every
// shard from it, scrubbing the restored state before the server can become
// ready. Safe to call more than once; only the first call does work. With no
// snapshot directory configured, or a cold (empty) directory, it is a no-op.
//
// Recover runs on Serve's goroutine before the accept loop starts, so the
// owner goroutines — which touch shard state only after receiving from their
// request channels — observe the restored controllers through the channel's
// happens-before edge.
func (s *Server) Recover() error {
	s.recoverOnce.Do(func() { s.recoverErr = s.recover() })
	return s.recoverErr
}

func (s *Server) recover() error {
	s.reg.Set("serve_recovery_generation", 0)
	if s.cfg.SnapshotDir == "" {
		return nil
	}
	g, skipped, err := snapshot.Latest(s.cfg.SnapshotDir)
	for _, msg := range skipped {
		s.logEvent(slog.LevelWarn, "recovery_skipped_candidate", "detail", msg)
	}
	if err != nil {
		return fmt.Errorf("dewrite-serve: scanning snapshots: %w", err)
	}
	if g == nil {
		s.logEvent(slog.LevelInfo, "recovery_cold_start", "dir", s.cfg.SnapshotDir)
		return nil
	}
	for key, want := range s.snapMeta() {
		if got := g.Manifest.Meta[key]; got != want {
			return fmt.Errorf("dewrite-serve: snapshot generation %d has %s=%q, this server wants %q",
				g.Manifest.Generation, key, got, want)
		}
	}

	var keys, dropped uint64
	for _, w := range s.shards {
		blob, err := g.ReadFile(shardFileName(w.id))
		if err != nil {
			return fmt.Errorf("dewrite-serve: recovering shard %d: %w", w.id, err)
		}
		hdr, ckpt, err := decodeShard(blob)
		if err != nil {
			return fmt.Errorf("dewrite-serve: recovering shard %d: %w", w.id, err)
		}
		if hdr.Shard != w.id || hdr.Next > w.cap {
			return fmt.Errorf("dewrite-serve: shard %d payload claims shard %d, next %d of %d lines",
				w.id, hdr.Shard, hdr.Next, w.cap)
		}
		ctrl, err := core.Restore(bytes.NewReader(ckpt), core.Options{DataLines: w.cap, Config: s.shardCfg})
		if err != nil {
			return fmt.Errorf("dewrite-serve: restoring shard %d controller: %w", w.id, err)
		}
		// Scrub before trusting anything: table invariants must hold, and
		// every recovered key must read back through the verified path.
		if err := ctrl.Tables().CheckInvariants(); err != nil {
			return fmt.Errorf("dewrite-serve: shard %d dedup tables corrupt after restore: %w", w.id, err)
		}
		w.now = units.Time(hdr.Now)
		slots := make(map[string]uint64, len(hdr.Keys))
		var buf [config.LineSize]byte
		shardDropped := 0
		for _, ks := range hdr.Keys {
			if ks.Slot >= hdr.Next {
				return fmt.Errorf("dewrite-serve: shard %d key %q maps past the allocation cursor", w.id, ks.Key)
			}
			t, err := ctrl.ReadVerified(w.now, ks.Slot, buf[:])
			if err != nil {
				// Poisoned or integrity-failed line: the key's data is gone.
				// Drop the binding — a GET will answer NotFound, which is
				// honest — rather than serving bytes that failed verification.
				shardDropped++
				s.logEvent(slog.LevelWarn, "recovery_dropped_key",
					"shard", w.id, "key", ks.Key, "err", err.Error())
				continue
			}
			w.now = t
			slots[ks.Key] = ks.Slot
		}
		w.ctrl = ctrl
		w.slots = slots
		w.next = hdr.Next
		w.puts, w.gets, w.misses, w.full = hdr.Puts, hdr.Gets, hdr.Misses, hdr.Full
		w.crossDup, w.total = hdr.CrossDup, hdr.Total

		// Re-arm the publish hook on the restored tables and rebuild this
		// shard's rows in the cross-shard fingerprint directory: one +1 per
		// live location, exactly what the original insertions published.
		d, id := s.dir, w.id
		ctrl.Tables().SetPublish(func(h uint32, delta int) { d.Publish(id, h, delta) })
		for loc := uint64(0); loc < w.next; loc++ {
			if h, live := ctrl.Tables().HashOf(loc); live {
				d.Publish(id, h, 1)
			}
		}
		keys += uint64(len(slots))
		dropped += uint64(shardDropped)
	}

	s.nextSnapGen = g.Manifest.Generation + 1
	s.reg.Set("serve_recovery_generation", float64(g.Manifest.Generation))
	s.reg.Set("serve_recovery_keys", float64(keys))
	s.reg.Set("serve_recovery_dropped_keys", float64(dropped))
	s.m.snapLastGen.Set(float64(g.Manifest.Generation))
	s.logEvent(slog.LevelInfo, "recovery_complete",
		"generation", g.Manifest.Generation, "keys", keys, "dropped", dropped)
	return nil
}

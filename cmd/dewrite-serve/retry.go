package main

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"dewrite/internal/rng"
)

// RetryClient is the production-grade counterpart of Client: it carries a
// per-request deadline on the wire, reconnects after transport failures, and
// retries retryable verdicts (BUSY, DEADLINE, broken connections) with
// capped exponential backoff and seeded full jitter. The seed makes a load
// run's retry schedule reproducible, which the chaos soak relies on: the
// same seed replays the same backoff decisions against the same fault plan.
//
// A RetryClient is single-goroutine, like Client; run one per connection.
type RetryClient struct {
	opts  RetryOptions
	src   *rng.Source
	conn  net.Conn
	rw    *bufio.ReadWriter
	stats RetryStats
}

// RetryOptions configures a RetryClient.
type RetryOptions struct {
	// Addr is the dewrite-serve TCP address.
	Addr string
	// Deadline is the per-request budget, carried on the wire (rounded up to
	// a millisecond) and applied to the connection's read/write deadlines.
	// Zero disables both.
	Deadline time.Duration
	// MaxAttempts bounds tries per request (first try included); <= 0
	// defaults to 8.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay, doubling per attempt;
	// <= 0 defaults to 2ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling; <= 0 defaults to 250ms.
	MaxBackoff time.Duration
	// Seed drives the jitter draws.
	Seed uint64
}

// RetryStats counts one client's outcomes. Received is the books-balance
// side: every response frame read off the wire, whatever its status.
type RetryStats struct {
	Received        uint64 // response frames read (OK+NotFound+Busy+Deadline+ErrResponses)
	OK              uint64
	NotFound        uint64
	Busy            uint64 // StatusBusy verdicts received (each is one retry trigger)
	Deadline        uint64 // StatusDeadline verdicts received
	ErrResponses    uint64 // StatusError responses (not retried)
	TransportErrors uint64 // dial/write/read failures
	Reconnects      uint64 // dials after the first
	Retries         uint64 // sleeps taken between attempts
	GiveUps         uint64 // requests that exhausted MaxAttempts
}

// NewRetryClient builds a client; the first dial is lazy, so construction
// never fails.
func NewRetryClient(opts RetryOptions) *RetryClient {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 2 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 250 * time.Millisecond
	}
	return &RetryClient{opts: opts, src: rng.New(opts.Seed)}
}

// Stats returns a copy of the client's counters.
func (c *RetryClient) Stats() RetryStats { return c.stats }

// Close tears down the connection if one is up.
func (c *RetryClient) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.rw = nil
	return err
}

// ensureConn dials if no connection is live.
func (c *RetryClient) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.opts.Addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.rw = bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	return nil
}

// dropConn discards a connection whose stream state is no longer trustworthy
// (any transport error mid-frame desynchronizes the framing).
func (c *RetryClient) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.rw = nil
	}
}

// backoff sleeps before retry attempt n (0-based): capped exponential with
// full jitter in [d/2, d], drawn from the seeded source.
func (c *RetryClient) backoff(n int) {
	d := c.opts.BaseBackoff << uint(n)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	half := uint64(d) / 2
	c.stats.Retries++
	time.Sleep(time.Duration(half + c.src.Uint64n(half+1)))
}

// deadlineMs renders the configured budget for the wire (0 = none).
func (c *RetryClient) deadlineMs() uint16 {
	if c.opts.Deadline <= 0 {
		return 0
	}
	ms := (c.opts.Deadline + time.Millisecond - 1) / time.Millisecond
	if ms > 0xFFFF {
		ms = 0xFFFF
	}
	return uint16(ms)
}

// try performs one attempt: dial if needed, frame, flush, read the response.
func (c *RetryClient) try(op byte, key string, val []byte) (byte, []byte, error) {
	if err := c.ensureConn(); err != nil {
		return 0, nil, err
	}
	if c.opts.Deadline > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opts.Deadline))
	}
	if err := writeRequest(c.rw, op, key, val, c.deadlineMs()); err != nil {
		return 0, nil, err
	}
	if err := c.rw.Flush(); err != nil {
		return 0, nil, err
	}
	return readResponse(c.rw)
}

// roundTrip runs one request through the retry loop, returning the first
// non-retryable response. BUSY and DEADLINE are retryable by protocol
// contract; transport errors retry on a fresh connection.
func (c *RetryClient) roundTrip(op byte, key string, val []byte) (byte, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.backoff(attempt - 1)
			if c.conn == nil {
				c.stats.Reconnects++
			}
		}
		status, resp, err := c.try(op, key, val)
		if err != nil {
			c.stats.TransportErrors++
			c.dropConn()
			lastErr = err
			continue
		}
		c.stats.Received++
		switch status {
		case StatusBusy:
			c.stats.Busy++
			lastErr = fmt.Errorf("%s %q: busy", opName(op), key)
			continue
		case StatusDeadline:
			c.stats.Deadline++
			lastErr = fmt.Errorf("%s %q: deadline expired server-side", opName(op), key)
			continue
		}
		return status, resp, nil
	}
	c.stats.GiveUps++
	return 0, nil, fmt.Errorf("%s %q: giving up after %d attempts: %w",
		opName(op), key, c.opts.MaxAttempts, lastErr)
}

// Put stores val under key, retrying until accepted or attempts exhaust.
func (c *RetryClient) Put(key string, val []byte) error {
	status, _, err := c.roundTrip(OpPut, key, val)
	if err != nil {
		return err
	}
	switch status {
	case StatusOK:
		c.stats.OK++
		return nil
	case StatusError:
		c.stats.ErrResponses++
		return fmt.Errorf("put %q: %s", key, statusName(status))
	default:
		return fmt.Errorf("put %q: unexpected %s", key, statusName(status))
	}
}

// Get returns the value under key; found is false on NotFound.
func (c *RetryClient) Get(key string) (val []byte, found bool, err error) {
	status, resp, err := c.roundTrip(OpGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case StatusOK:
		c.stats.OK++
		return resp, true, nil
	case StatusNotFound:
		c.stats.NotFound++
		return nil, false, nil
	case StatusError:
		c.stats.ErrResponses++
		return nil, false, fmt.Errorf("get %q: %s", key, statusName(status))
	default:
		return nil, false, fmt.Errorf("get %q: unexpected %s", key, statusName(status))
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// slowEntry is one captured slow request. IDs are the frame-assigned request
// IDs (see serveConn), so an entry here correlates 1:1 with the structured
// log's slow_request lines and with any other log line carrying the same id.
type slowEntry struct {
	ID        uint64 `json:"id"`
	Op        string `json:"op"`
	Shard     int    `json:"shard"` // -1 for requests that never route (STATS)
	LatencyNs int64  `json:"latency_ns"`
}

// slowRing is a bounded capture of the K slowest recent requests. "Recent"
// is a request-count window, not wall time: an entry is evicted once the
// newest request ID has moved more than window frames past it, so a single
// startup outlier cannot squat in the ring forever. Admission replaces the
// current minimum only when the candidate is slower, so with a full ring the
// contents are exactly the K slowest requests inside the window.
type slowRing struct {
	mu      sync.Mutex
	k       int
	window  uint64
	newest  uint64
	entries []slowEntry
}

func newSlowRing(k int, window uint64) *slowRing {
	if k < 1 {
		k = 1
	}
	if window == 0 {
		window = 1 << 16
	}
	return &slowRing{k: k, window: window}
}

// record offers one finished request to the ring and reports whether it was
// admitted (i.e. it is currently among the K slowest recent requests).
func (r *slowRing) record(e slowEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.ID > r.newest {
		r.newest = e.ID
	}
	// Age out entries that fell off the recency window.
	kept := r.entries[:0]
	for _, old := range r.entries {
		if old.ID+r.window > r.newest {
			kept = append(kept, old)
		}
	}
	r.entries = kept
	if len(r.entries) < r.k {
		r.entries = append(r.entries, e)
		return true
	}
	min := 0
	for i, old := range r.entries {
		if old.LatencyNs < r.entries[min].LatencyNs {
			min = i
		}
	}
	if e.LatencyNs <= r.entries[min].LatencyNs {
		return false
	}
	r.entries[min] = e
	return true
}

// snapshot returns the current entries sorted slowest-first.
func (r *slowRing) snapshot() []slowEntry {
	r.mu.Lock()
	out := append([]slowEntry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].LatencyNs != out[j].LatencyNs {
			return out[i].LatencyNs > out[j].LatencyNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ServeHTTP renders the ring as JSON for /debug/slow.
func (r *slowRing) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		K       int         `json:"k"`
		Window  uint64      `json:"window"`
		Slowest []slowEntry `json:"slowest"`
	}{K: r.k, Window: r.window, Slowest: r.snapshot()})
}

package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dewrite/internal/chaos"
	"dewrite/internal/monitor"
	"dewrite/internal/rng"
)

// requestsTotal sums serve_requests_total across ops — one half of the
// books-balance equation.
func requestsTotal(reg *monitor.Registry) uint64 {
	var total uint64
	for _, op := range []string{"put", "get", "stats", "unknown"} {
		total += reg.Counter("serve_requests_total", monitor.Label{Key: "op", Value: op}).Value()
	}
	return total
}

// checkBooks asserts the invariant every response flushed to a client is
// counted exactly once: client-received == requests_total + shed_total.
func checkBooks(t *testing.T, srv *Server, received uint64) {
	t.Helper()
	counted := requestsTotal(srv.Registry()) + srv.m.shedTotal()
	if counted != received {
		t.Fatalf("books unbalanced: clients received %d responses, server counted %d (requests %d + sheds %d)",
			received, counted, requestsTotal(srv.Registry()), srv.m.shedTotal())
	}
}

// TestAdmissionControlSheds pins the backpressure contract: with every owner
// request stalled and a tiny mailbox, a concurrent burst must be answered —
// some OK, the overflow BUSY — with zero requests silently dropped and the
// shed counters carrying exactly the BUSY responses.
func TestAdmissionControlSheds(t *testing.T) {
	srv, err := NewServer(Config{
		Shards: 1, Lines: 1 << 10, AdvanceEvery: 1 << 20,
		QueueDepth: 2,
		// Stall every request so the queue backs up deterministically.
		Chaos: &chaos.Plan{Seed: 7, StallRate: 1, StallNs: 10_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	const clients, perClient = 8, 4
	var mu sync.Mutex
	var received, busy, ok uint64
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for k := 0; k < perClient; k++ {
				status, _, err := c.roundTrip(OpPut, fmt.Sprintf("k%d-%d", cl, k), []byte("v"))
				if err != nil {
					t.Errorf("client %d: transport error mid-burst: %v", cl, err)
					return
				}
				mu.Lock()
				received++
				switch status {
				case StatusOK:
					ok++
				case StatusBusy:
					busy++
				default:
					t.Errorf("unexpected status %s", statusName(status))
				}
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()

	if busy == 0 {
		t.Fatal("stalled single shard with queue depth 2 shed nothing")
	}
	if ok == 0 {
		t.Fatal("everything shed: admission never let a request through")
	}
	checkBooks(t, srv, received)
	if got := srv.m.shedTotal(); got != busy {
		t.Fatalf("serve_shed_total = %d, clients saw %d BUSY responses", got, busy)
	}
}

// TestDeadlineExpiresInQueue: with the owner stalled, a queued request whose
// wire deadline has passed is answered StatusDeadline without touching the
// controller, and lands in serve_shed_total{cause="deadline"}.
func TestDeadlineExpiresInQueue(t *testing.T) {
	srv, err := NewServer(Config{
		Shards: 1, Lines: 1 << 10, AdvanceEvery: 1 << 20,
		QueueDepth: 16,
		Chaos:      &chaos.Plan{Seed: 3, StallRate: 1, StallNs: 30_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)

	// Pipeline several 1ms-deadline requests: each owner execution stalls
	// 30ms, so by the time the later ones are dequeued their budget is gone.
	const frames = 6
	for k := 0; k < frames; k++ {
		if err := writeRequest(bw, OpPut, fmt.Sprintf("d%d", k), []byte("v"), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var deadlined int
	for k := 0; k < frames; k++ {
		status, _, err := readResponse(br)
		if err != nil {
			t.Fatalf("frame %d: %v", k, err)
		}
		if status == StatusDeadline {
			deadlined++
		}
	}
	if deadlined == 0 {
		t.Fatal("no queued request expired despite 1ms budgets against 30ms stalls")
	}
	cause := srv.reg.Counter("serve_shed_total",
		monitor.Label{Key: "shard", Value: "0"},
		monitor.Label{Key: "cause", Value: "deadline"}).Value()
	if cause != uint64(deadlined) {
		t.Fatalf("shed{cause=deadline} = %d, clients saw %d DEADLINE responses", cause, deadlined)
	}
	checkBooks(t, srv, frames)
}

// TestSnapshotRecoveryAfterCrash is the kill -9 contract: state as of the
// last committed snapshot survives an ungraceful abort — the restart scrubs
// and serves byte-matching GETs — while writes after that snapshot are
// honestly absent, and /readyz stays down until recovery completes.
func TestSnapshotRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 4, Lines: 1 << 12, AdvanceEvery: 64,
		SnapshotDir: dir, SnapshotEvery: 1 << 20, // explicit snapshots only
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	want := make(map[string][]byte)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("durable:%d", k)
		val := make([]byte, 1+src.Intn(ValueCap-1))
		for i := range val {
			val[i] = byte(src.Uint64n(16))
		}
		if err := c.Put(key, val); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	if !srv.Snapshot() {
		t.Fatal("explicit snapshot did not commit")
	}
	// Writes after the snapshot die with the crash.
	if err := c.Put("ephemeral", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Abort() // kill -9, in process: no drain, no final snapshot

	restarted, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restarted.Ready() {
		t.Fatal("server ready before Serve ran recovery")
	}
	if err := restarted.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restarted.Close)
	if !restarted.Ready() {
		t.Fatal("server not ready after recovery + generation zero")
	}

	reg := restarted.Registry()
	if gen := reg.Get("serve_recovery_generation"); gen != 1 {
		t.Fatalf("serve_recovery_generation = %v, want 1", gen)
	}
	if keys := reg.Get("serve_recovery_keys"); keys != float64(len(want)) {
		t.Fatalf("serve_recovery_keys = %v, want %d", keys, len(want))
	}
	if dropped := reg.Get("serve_recovery_dropped_keys"); dropped != 0 {
		t.Fatalf("clean snapshot recovery dropped %v keys", dropped)
	}

	c2, err := Dial(restarted.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for key, val := range want {
		got, found, err := c2.Get(key)
		if err != nil || !found {
			t.Fatalf("recovered get %s: found=%v err=%v", key, found, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("recovered %s = %q, want %q", key, got, val)
		}
	}
	if _, found, err := c2.Get("ephemeral"); err != nil || found {
		t.Fatalf("post-snapshot key survived the crash: found=%v err=%v", found, err)
	}
	// Dedup state came back too: re-putting an existing value must
	// register in the restored tables (no crash, correct refcounts) and the
	// cross-shard directory must have been republished.
	for key, val := range want {
		if err := c2.Put(key, val); err != nil {
			t.Fatalf("re-put %s onto recovered state: %v", key, err)
		}
		break
	}
	restarted.Advance()
	if reg.Get("serve_directory_fingerprints") == 0 {
		t.Fatal("cross-shard directory empty after recovery republish")
	}
}

// TestSnapshotChaosAbortFallsBack: a chaos plan that kills every mid-run
// snapshot leaves only debris, but the clean-shutdown snapshot (which
// bypasses the plan) still commits, and a restart steps over the debris.
func TestSnapshotChaosAbortFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 2, Lines: 1 << 10, AdvanceEvery: 64,
		SnapshotDir: dir, SnapshotEvery: 1 << 20,
		Chaos: &chaos.Plan{Seed: 5, SnapshotAbortRate: 1},
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if srv.Snapshot() {
		t.Fatal("snapshot committed under an abort-rate-1 plan")
	}
	if got := srv.m.snapshotAborts.Value(); got != 1 {
		t.Fatalf("serve_snapshot_aborts_total = %d, want 1", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".tmp") {
		t.Fatalf("aborted snapshot left %v, want one .tmp debris dir (err %v)", entries, err)
	}
	c.Close()
	srv.Close() // clean shutdown: snapshot bypasses chaos

	restarted, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restarted.Close)
	if restarted.Registry().Get("serve_recovery_keys") != 1 {
		t.Fatalf("recovery after debris: %v keys", restarted.Registry().Get("serve_recovery_keys"))
	}
	c2, err := Dial(restarted.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, found, err := c2.Get("k")
	if err != nil || !found || string(got) != "v" {
		t.Fatalf("get after debris recovery: %q %v %v", got, found, err)
	}
}

// TestRecoveryRejectsConfigSkew: a snapshot taken under a different shard
// count must fail recovery loudly, not silently misroute keys.
func TestRecoveryRejectsConfigSkew(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(Config{Shards: 4, Lines: 1 << 10, SnapshotDir: dir, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if !srv.Snapshot() {
		t.Fatal("snapshot did not commit")
	}
	srv.Close()

	skewed, err := NewServer(Config{Shards: 2, Lines: 1 << 10, SnapshotDir: dir, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer skewed.Close()
	if err := skewed.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("recovery accepted a snapshot from a 4-shard layout into 2 shards")
	} else if !strings.Contains(err.Error(), "shards") {
		t.Fatalf("skew error does not name the mismatched field: %v", err)
	}
}

// TestRetryClientRidesThroughResets: with every connection doomed to an
// early reset, the retrying client must still complete its workload through
// reconnects, and the books must balance despite the carnage.
func TestRetryClientRidesThroughResets(t *testing.T) {
	srv, err := NewServer(Config{
		Shards: 2, Lines: 1 << 10, AdvanceEvery: 64,
		Chaos: &chaos.Plan{Seed: 11, ConnResetRate: 1, ConnResetMaxFrames: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	cl := NewRetryClient(RetryOptions{Addr: srv.Addr(), Seed: 99, Deadline: 5 * time.Second})
	defer cl.Close()
	for k := 0; k < 40; k++ {
		key := fmt.Sprintf("r%d", k)
		if err := cl.Put(key, []byte(key)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		got, found, err := cl.Get(key)
		if err != nil || !found || string(got) != key {
			t.Fatalf("get %s: %q %v %v", key, got, found, err)
		}
	}
	st := cl.Stats()
	if st.Reconnects == 0 || st.TransportErrors == 0 {
		t.Fatalf("every connection was doomed yet stats saw no reconnects: %+v", st)
	}
	if st.GiveUps != 0 {
		t.Fatalf("client gave up %d times under reset-only chaos", st.GiveUps)
	}
	checkBooks(t, srv, st.Received)
}

// TestChaosSoakBooksBalance is the deterministic soak: the full fault plan
// (resets, slow-loris, stalls, snapshot aborts) against concurrent retrying
// clients, then three audits — the books balance to the response, a crash
// recovery restores the clean-shutdown reference byte for byte, and the
// whole run is reproducible from its seeds.
func TestChaosSoakBooksBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	dir := t.TempDir()
	plan := chaos.Default(1234)
	plan.StallNs = 2_000_000  // soften the stalls: -race CI wall clock
	plan.SlowReadNs = 500_000 // likewise the slow-loris pacing
	cfg := Config{
		Shards: 4, Lines: 1 << 12, AdvanceEvery: 128,
		QueueDepth: 32, SnapshotDir: dir, SnapshotEvery: 4, SnapshotKeep: 2,
		Chaos: plan,
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 4, 150
	type result struct {
		stats RetryStats
		want  map[string][]byte // this client's final value per key (disjoint key spaces)
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := NewRetryClient(RetryOptions{
				Addr:     srv.Addr(),
				Deadline: 2 * time.Second,
				Seed:     uint64(cl) + 1,
			})
			defer c.Close()
			src := rng.New(uint64(cl)*7 + 1)
			want := make(map[string][]byte)
			for k := 0; k < perClient; k++ {
				key := fmt.Sprintf("soak:%d:%d", cl, src.Intn(40))
				if src.Bool(0.7) {
					val := make([]byte, 1+src.Intn(60))
					for i := range val {
						val[i] = byte(src.Uint64n(4))
					}
					if err := c.Put(key, val); err != nil {
						t.Errorf("soak put %s: %v", key, err)
						return
					}
					want[key] = val
				} else {
					got, found, err := c.Get(key)
					if err != nil {
						t.Errorf("soak get %s: %v", key, err)
						return
					}
					if prev, stored := want[key]; stored && (!found || !bytes.Equal(got, prev)) {
						t.Errorf("soak readback %s: found=%v got=%q want=%q", key, found, got, prev)
						return
					}
				}
			}
			results[cl] = result{stats: c.Stats(), want: want}
		}(cl)
	}
	wg.Wait()
	if t.Failed() {
		srv.Close()
		return
	}

	var received uint64
	expected := make(map[string][]byte)
	for _, r := range results {
		received += r.stats.Received
		for k, v := range r.want {
			expected[k] = v
		}
	}
	checkBooks(t, srv, received)
	srv.Close() // clean shutdown: reference snapshot, chaos bypassed

	// Crash-recovery audit: boot from the clean-shutdown snapshot, kill -9
	// immediately after re-snapshotting, boot again — every surviving state
	// must byte-match what the clients last wrote.
	for round := 0; round < 2; round++ {
		restarted, err := NewServer(Config{
			Shards: cfg.Shards, Lines: cfg.Lines, AdvanceEvery: cfg.AdvanceEvery,
			SnapshotDir: dir, SnapshotEvery: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := restarted.Serve("127.0.0.1:0"); err != nil {
			t.Fatalf("round %d recovery: %v", round, err)
		}
		reg := restarted.Registry()
		if reg.Get("serve_recovery_generation") == 0 {
			t.Fatalf("round %d recovered nothing", round)
		}
		if dropped := reg.Get("serve_recovery_dropped_keys"); dropped != 0 {
			t.Fatalf("round %d scrub dropped %v keys from clean snapshots", round, dropped)
		}
		c, err := Dial(restarted.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for key, val := range expected {
			got, found, err := c.Get(key)
			if err != nil || !found || !bytes.Equal(got, val) {
				t.Fatalf("round %d recovered %s = %q (found=%v err=%v), want %q",
					round, key, got, found, err, val)
			}
		}
		c.Close()
		if !restarted.Snapshot() {
			t.Fatalf("round %d re-snapshot failed", round)
		}
		restarted.Abort() // kill -9 for the next round
	}
}

// TestReadyzDuringDrain: Ready flips to false the moment Close begins and
// the serve_draining gauge records the drain, while in-flight work still
// completes (covered by TestServeGracefulShutdown).
func TestReadyzDuringDrain(t *testing.T) {
	srv := startTestServer(t, 2)
	if !srv.Ready() {
		t.Fatal("server not ready after Serve")
	}
	if srv.reg.Get("serve_draining") != 0 {
		t.Fatal("serve_draining nonzero before Close")
	}
	srv.Close()
	if srv.Ready() {
		t.Fatal("server still ready after Close")
	}
	if srv.reg.Get("serve_draining") != 1 {
		t.Fatal("serve_draining gauge not set during shutdown")
	}
}

// TestSnapshotPeriodicTrigger: with SnapshotEvery=1 every epoch advance
// commits a generation, and Prune holds the directory at SnapshotKeep.
func TestSnapshotPeriodicTrigger(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(Config{
		Shards: 2, Lines: 1 << 10, AdvanceEvery: 8,
		SnapshotDir: dir, SnapshotEvery: 1, SnapshotKeep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		if err := c.Put(fmt.Sprintf("p%d", k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	srv.Close()

	if got := srv.m.snapshots.Value(); got < 2 {
		t.Fatalf("serve_snapshots_total = %d after 64 puts at AdvanceEvery=8, SnapshotEvery=1", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var gens int
	for _, e := range entries {
		if e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			gens++
			if _, err := os.Stat(filepath.Join(dir, e.Name(), "manifest.json")); err != nil {
				t.Fatalf("generation %s lacks a manifest", e.Name())
			}
		}
	}
	if gens > 2 {
		t.Fatalf("%d generations retained, SnapshotKeep=2", gens)
	}
}

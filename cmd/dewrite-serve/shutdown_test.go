package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dewrite/internal/monitor"
)

// TestServeGracefulShutdown pins the shutdown contract: Close during a
// concurrent load burst drops no response — every request a client got an
// answer for is counted, and every counted request reached a client, so the
// books balance exactly. It also checks the listener closes exactly once
// (concurrent Close calls are safe and Dial fails afterwards) and that the
// final gauge state is consistent with the counters.
func TestServeGracefulShutdown(t *testing.T) {
	srv, err := NewServer(Config{Shards: 4, Lines: 1 << 12, AdvanceEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	const clients = 6
	var (
		okPuts  atomic.Uint64 // responses received for PUT frames
		okGets  atomic.Uint64 // responses received for GET frames
		started sync.WaitGroup
		wg      sync.WaitGroup
	)
	started.Add(clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				started.Done()
				t.Errorf("client %d dial: %v", cl, err)
				return
			}
			defer c.Close()
			first := true
			for k := 0; ; k++ {
				key := fmt.Sprintf("c%d:k%d", cl, k%50)
				if err := c.Put(key, []byte(fmt.Sprintf("v%d", k))); err != nil {
					break // transport teardown: the server is closing
				}
				okPuts.Add(1)
				if _, found, err := c.Get(key); err != nil {
					break
				} else if !found {
					t.Errorf("client %d: key %s vanished", cl, key)
					break
				}
				okGets.Add(1)
				if first {
					first = false
					started.Done()
				}
			}
			if first {
				started.Done()
			}
		}(cl)
	}

	// Close mid-burst, from several goroutines at once: the listener must
	// close exactly once and every in-flight request must still be answered.
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let the burst build
	var closers sync.WaitGroup
	for i := 0; i < 3; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			srv.Close()
		}()
	}
	closers.Wait()
	wg.Wait()
	srv.Close() // idempotent after the fact

	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("Dial succeeded after Close — listener still open")
	}

	reg := srv.Registry()
	counted := func(op string) uint64 {
		return reg.Counter("serve_requests_total", monitor.Label{Key: "op", Value: op}).Value()
	}
	if got, want := counted("put"), okPuts.Load(); got != want {
		t.Fatalf("serve_requests_total{op=put} = %d, clients received %d put responses", got, want)
	}
	if got, want := counted("get"), okGets.Load(); got != want {
		t.Fatalf("serve_requests_total{op=get} = %d, clients received %d get responses", got, want)
	}
	if okPuts.Load() == 0 || okGets.Load() == 0 {
		t.Fatal("shutdown raced the load burst: no requests completed")
	}

	// The final Advance folded the owners' state, so the per-shard gauges
	// agree with the flushed-response counters.
	var puts, gets float64
	for i := 0; i < 4; i++ {
		labels := "\x00" + fmt.Sprintf(`{shard="%d"}`, i)
		puts += reg.Get("serve_puts" + labels)
		gets += reg.Get("serve_gets" + labels)
	}
	if puts != float64(okPuts.Load()) {
		t.Fatalf("final gauges fold %v puts, counters say %d", puts, okPuts.Load())
	}
	if gets != float64(okGets.Load()) {
		t.Fatalf("final gauges fold %v gets, counters say %d", gets, okGets.Load())
	}

	// Latency histograms observed exactly the flushed responses.
	putLat := reg.Histogram("serve_request_latency_ns", nil, monitor.Label{Key: "op", Value: "put"})
	if putLat.Count() != okPuts.Load() {
		t.Fatalf("put latency histogram holds %d observations, want %d", putLat.Count(), okPuts.Load())
	}
}

// TestServeCloseBeforeServe: closing a server that never accepted is clean.
func TestServeCloseBeforeServe(t *testing.T) {
	srv, err := NewServer(Config{Shards: 2, Lines: 256})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	if srv.Addr() != "" {
		t.Fatalf("unbound server has address %q", srv.Addr())
	}
}

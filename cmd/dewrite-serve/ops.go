package main

import (
	"strconv"

	"dewrite/internal/monitor"
)

// The serving daemon's metric taxonomy. Every serve-owned metric carries the
// serve_ prefix; the per-shard controller gauges additionally use the
// serve_shard_<n>.* prefix family published through Registry.PublishEpoch.
//
//	metric                            type       labels       meaning
//	--------------------------------  ---------  -----------  ----------------------------------------------
//	serve_requests_total              counter    op           responses flushed to clients, by op
//	serve_errors_total                counter    op, cause    error responses and protocol failures, by cause
//	serve_request_latency_ns          histogram  op           wall-clock frame-read → response-flushed latency
//	serve_slow_requests_total         counter    —            requests admitted to the /debug/slow ring
//	serve_connections_total           counter    —            client connections accepted
//	serve_connections_open            gauge      —            client connections currently open
//	serve_queue_depth                 gauge      shard        owner mailbox depth sampled at enqueue
//	serve_occupancy                   gauge      shard        fraction of the shard's lines holding a key
//	serve_keys                        gauge      shard        distinct keys stored on the shard
//	serve_puts / serve_gets /
//	serve_misses                      gauge      shard        owner op counts folded at each barrier
//	serve_cross_shard_dup_hits        gauge      shard        puts whose fingerprint was live on another shard
//	serve_barrier_stall_ns_total      counter    shard        wall ns owners spent blocked at the epoch barrier
//	serve_advances_total              counter    —            epoch barriers crossed
//	serve_advance_ns_total            counter    —            wall ns spent inside barriers (directory fold + publish)
//	serve_directory_publishes         gauge      shard        fingerprint deltas each shard published last epoch
//	serve_directory_*                 gauge      —            frozen-generation census (fingerprints, locations, …)
//	serve_ready                       gauge      —            1 once generation zero has published
//	serve_draining                    gauge      —            1 while graceful shutdown drains in-flight work
//	serve_shed_total                  counter    shard, cause requests refused admission (watermark, drain,
//	                                                          queue_full) or expired in queue (deadline)
//	serve_drain_mode                  gauge      shard        1 while the shard is between watermarks shedding
//	serve_snapshots_total             counter    —            snapshot generations committed
//	serve_snapshot_aborts_total       counter    —            snapshots abandoned mid-write (chaos or error)
//	serve_snapshot_last_generation    gauge      —            generation number of the last committed snapshot
//	serve_recovery_generation         gauge      —            snapshot generation restored at boot (0 = cold)
//	serve_recovery_keys               gauge      —            keys recovered across all shards at boot
//	serve_recovery_dropped_keys       gauge      —            keys dropped by the post-restore scrub (poisoned)
//	serve_chaos_conn_resets_total     counter    —            connections torn down by the fault plan
//	serve_chaos_slow_reads_total      counter    —            reads paced by injected slow-loris delay
//	serve_chaos_stalls_total          counter    —            shard-owner stalls injected by the fault plan
//	serve_shard_<n>.*                 gauge      —            controller epoch sample (dup_eliminated, wear, …)
//
// Counters are monotonic (rates come from scrape deltas), gauges are
// last-write-wins snapshots, and the latency histogram is a native
// Prometheus histogram whose log-spaced buckets reuse the simulator's
// stats.Latency geometry — see DESIGN.md §13. Serve metrics are runtime-only:
// none of them appear in run reports, so the frozen report schemas are
// untouched.
//
// Books balance: every response flushed to a client is counted in exactly
// one of serve_requests_total (OK / NotFound / Error) or serve_shed_total
// (BUSY / DEADLINE). The chaos soak pins this equality.

// latencyBounds spans 1 µs to ~17 s with two buckets per power of two —
// wide enough for a loaded barrier stall, fine enough for meaningful
// p50/p95/p99 interpolation in dewrite-top.
func latencyBounds() []uint64 {
	const (
		microsecond = 1_000          // histogram unit is nanoseconds
		ceiling     = 17_000_000_000 // ~17 s; beyond lands in +Inf
	)
	return monitor.LatencyBounds(microsecond, ceiling, 2)
}

// Shed causes, indexed into serveMetrics.sheds. Admission-time causes come
// first; shedDeadline is charged by the shard owner when an admitted
// request's budget expires in the queue.
const (
	shedWatermark = iota // drain mode entered at this admission
	shedDrain            // drain mode already active
	shedQueueFull        // mailbox full with drain mode off (burst overflow)
	shedDeadline         // admitted, but expired before execution
	shedCauses
)

var shedCauseNames = [shedCauses]string{"watermark", "drain", "queue_full", "deadline"}

// serveMetrics holds the hot-path instruments, resolved once at construction
// so request handling never renders label sets.
type serveMetrics struct {
	// requests is indexed by op-1 (OpPut, OpGet, OpStats); the final slot is
	// the op="unknown" bucket, so a flushed error response to an
	// unrecognized opcode still lands in the books.
	requests [4]*monitor.Counter
	latency  [3]*monitor.Histogram // indexed by op-1; unknown ops have no latency family
	stalls   []*monitor.Counter    // per shard: serve_barrier_stall_ns_total

	slowTotal  *monitor.Counter
	connsTotal *monitor.Counter
	advances   *monitor.Counter
	advanceNs  *monitor.Counter

	// Admission control and backpressure, per shard.
	sheds      [][shedCauses]*monitor.Counter // serve_shed_total{shard,cause}
	queueDepth []*monitor.Gauge               // serve_queue_depth{shard}
	drainMode  []*monitor.Gauge               // serve_drain_mode{shard}

	// Crash-safe state and fault injection.
	snapshots      *monitor.Counter
	snapshotAborts *monitor.Counter
	snapLastGen    *monitor.Gauge
	chaosResets    *monitor.Counter
	chaosSlowReads *monitor.Counter
	chaosStalls    *monitor.Counter
}

func opName(op byte) string {
	switch op {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpStats:
		return "stats"
	default:
		return "unknown"
	}
}

func newServeMetrics(reg *monitor.Registry, shards int) *serveMetrics {
	m := &serveMetrics{
		slowTotal:      reg.Counter("serve_slow_requests_total"),
		connsTotal:     reg.Counter("serve_connections_total"),
		advances:       reg.Counter("serve_advances_total"),
		advanceNs:      reg.Counter("serve_advance_ns_total"),
		snapshots:      reg.Counter("serve_snapshots_total"),
		snapshotAborts: reg.Counter("serve_snapshot_aborts_total"),
		snapLastGen:    reg.Gauge("serve_snapshot_last_generation"),
		chaosResets:    reg.Counter("serve_chaos_conn_resets_total"),
		chaosSlowReads: reg.Counter("serve_chaos_slow_reads_total"),
		chaosStalls:    reg.Counter("serve_chaos_stalls_total"),
	}
	bounds := latencyBounds()
	for _, op := range []byte{OpPut, OpGet, OpStats} {
		label := monitor.Label{Key: "op", Value: opName(op)}
		m.requests[op-1] = reg.Counter("serve_requests_total", label)
		m.latency[op-1] = reg.Histogram("serve_request_latency_ns", bounds, label)
	}
	m.requests[len(m.requests)-1] = reg.Counter("serve_requests_total",
		monitor.Label{Key: "op", Value: "unknown"})
	for i := 0; i < shards; i++ {
		label := monitor.Label{Key: "shard", Value: strconv.Itoa(i)}
		m.stalls = append(m.stalls, reg.Counter("serve_barrier_stall_ns_total", label))
		m.queueDepth = append(m.queueDepth, reg.Gauge("serve_queue_depth", label))
		m.drainMode = append(m.drainMode, reg.Gauge("serve_drain_mode", label))
		var causes [shedCauses]*monitor.Counter
		for c, name := range shedCauseNames {
			causes[c] = reg.Counter("serve_shed_total", label,
				monitor.Label{Key: "cause", Value: name})
		}
		m.sheds = append(m.sheds, causes)
	}
	return m
}

// shedTotal sums every shed counter — the other half of the books-balance
// equation (used by tests and the chaos soak).
func (m *serveMetrics) shedTotal() uint64 {
	var total uint64
	for _, causes := range m.sheds {
		for _, c := range causes {
			total += c.Value()
		}
	}
	return total
}

// errorCause increments serve_errors_total for one (op, cause) pair. Error
// paths are rare, so rendering the label set per call is fine.
func (s *Server) errorCause(op byte, cause string) {
	s.reg.Counter("serve_errors_total",
		monitor.Label{Key: "op", Value: opName(op)},
		monitor.Label{Key: "cause", Value: cause}).Inc()
}

// startOps brings up the ops HTTP surface over the server's registry:
// /metrics (gauges + counters + histograms), /debug/vars, /healthz, and the
// serving-specific endpoints /readyz (503 until generation zero publishes)
// and /debug/slow (the slowest-recent-requests ring).
func startOps(addr string, srv *Server) (*monitor.Server, error) {
	return monitor.ServeWith(addr, srv.Registry(), monitor.ServeOpts{
		Ready: srv.Ready,
		Slow:  srv.slow,
	})
}

// dewrite-serve is the long-running sharded secure-NVM service: the
// securekv example promoted to a network daemon. It partitions a simulated
// DeWrite device across N controller shards (each owned by one goroutine),
// serves concurrent client streams over a minimal framed TCP protocol
// (PUT/GET/STATS — see proto.go), maintains the cross-shard fingerprint
// directory behind the same epoch-barrier contract the deterministic
// simulator uses, and exposes the monitor package's Prometheus-style gauges
// over HTTP.
//
// Usage:
//
//	dewrite-serve [-addr :7420] [-metrics :9420] [-shards 4] [-lines 65536]
//	              [-advance-every 1024]
//
// The service is a workload harness for the simulator, not a real database:
// values live in simulated encrypted NVM lines and all persistence is
// in-memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	addr := flag.String("addr", ":7420", "TCP listen address for the framed KV protocol")
	metrics := flag.String("metrics", ":9420", "HTTP listen address for /metrics, /debug/vars, /healthz (empty disables)")
	shards := flag.Int("shards", 4, "controller shards (owner goroutines)")
	lines := flag.Uint64("lines", 1<<16, "data lines striped across shards")
	advanceEvery := flag.Uint64("advance-every", 1024, "requests between cross-shard directory advances")
	flag.Parse()

	srv, err := NewServer(Config{Shards: *shards, Lines: *lines, AdvanceEvery: *advanceEvery})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Serve(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dewrite-serve: %d shards over %d lines, listening on %s\n", *shards, *lines, srv.Addr())

	if *metrics != "" {
		msrv, err := startMetrics(*metrics, srv)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		fmt.Printf("dewrite-serve: metrics on http://%s/metrics\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dewrite-serve: shutting down")
	srv.Close()
}

// dewrite-serve is the long-running sharded secure-NVM service: the
// securekv example promoted to a network daemon. It partitions a simulated
// DeWrite device across N controller shards (each owned by one goroutine),
// serves concurrent client streams over a minimal framed TCP protocol
// (PUT/GET/STATS — see proto.go), maintains the cross-shard fingerprint
// directory behind the same epoch-barrier contract the deterministic
// simulator uses, and exposes an ops-grade observability surface: request
// and error counters, native latency histograms, per-shard balance gauges,
// barrier stall accounting, /readyz and /debug/slow, and structured JSON
// logs (see ops.go for the metric table, DESIGN.md §13 for the model).
//
// Usage:
//
//	dewrite-serve [-addr :7420] [-metrics :9420] [-shards 4] [-lines 65536]
//	              [-advance-every 1024] [-slow-k 32]
//	              [-log stderr|PATH] [-log-level info]
//
// The service is a workload harness for the simulator, not a real database:
// values live in simulated encrypted NVM lines and all persistence is
// in-memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
)

// buildLogger constructs the optional structured logger: dest "" disables
// logging entirely (the default — the hot path pays one nil check), "stderr"
// streams JSON records to stderr, anything else appends to that file.
func buildLogger(dest, level string) (*slog.Logger, func(), error) {
	if dest == "" {
		return nil, func() {}, nil
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, nil, fmt.Errorf("dewrite-serve: -log-level %q: %w", level, err)
	}
	w, cleanup := os.Stderr, func() {}
	if dest != "stderr" {
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("dewrite-serve: -log: %w", err)
		}
		w, cleanup = f, func() { f.Close() }
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lv})), cleanup, nil
}

func main() {
	addr := flag.String("addr", ":7420", "TCP listen address for the framed KV protocol")
	metrics := flag.String("metrics", ":9420", "HTTP listen address for /metrics, /readyz, /healthz, /debug/slow, /debug/vars (empty disables)")
	shards := flag.Int("shards", 4, "controller shards (owner goroutines)")
	lines := flag.Uint64("lines", 1<<16, "data lines striped across shards")
	advanceEvery := flag.Uint64("advance-every", 1024, "requests between cross-shard directory advances")
	slowK := flag.Int("slow-k", 32, "capacity of the /debug/slow slowest-recent-requests ring")
	logDest := flag.String("log", "", `structured JSON log destination: "stderr" or a file path (empty disables)`)
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	logger, logClose, err := buildLogger(*logDest, *logLevel)
	if err != nil {
		log.Fatal(err)
	}
	defer logClose()

	srv, err := NewServer(Config{
		Shards: *shards, Lines: *lines, AdvanceEvery: *advanceEvery,
		SlowK: *slowK, Logger: logger,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The ops endpoint comes up before Serve publishes generation zero, so a
	// load balancer probing /readyz sees 503 until the daemon can actually
	// answer requests — /healthz is process liveness, /readyz is readiness.
	if *metrics != "" {
		m, err := startOps(*metrics, srv)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		fmt.Printf("dewrite-serve: metrics on http://%s/metrics (readyz, debug/slow alongside)\n", m.Addr())
	}

	if err := srv.Serve(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dewrite-serve: %d shards over %d lines, listening on %s\n", *shards, *lines, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dewrite-serve: shutting down")
	srv.Close()
}

// dewrite-serve is the long-running sharded secure-NVM service: the
// securekv example promoted to a network daemon. It partitions a simulated
// DeWrite device across N controller shards (each owned by one goroutine),
// serves concurrent client streams over a minimal framed TCP protocol
// (PUT/GET/STATS — see proto.go), maintains the cross-shard fingerprint
// directory behind the same epoch-barrier contract the deterministic
// simulator uses, and exposes an ops-grade observability surface: request
// and error counters, native latency histograms, per-shard balance gauges,
// barrier stall accounting, /readyz and /debug/slow, and structured JSON
// logs (see ops.go for the metric table, DESIGN.md §13 for the model).
//
// Production hardening (DESIGN.md §14): bounded per-shard mailboxes with
// watermark-based load shedding (typed BUSY responses), per-request
// deadlines enforced at the shard owner, periodic crash-safe snapshots with
// kill -9 recovery, and a seeded deterministic chaos mode for soak testing.
//
// Usage:
//
//	dewrite-serve [-addr :7420] [-metrics :9420] [-shards 4] [-lines 65536]
//	              [-advance-every 1024] [-slow-k 32]
//	              [-queue-depth 64] [-deadline 0] [-shed-high 0.9] [-shed-low 0.5]
//	              [-snapshot-dir DIR] [-snapshot-every 8] [-snapshot-keep 3]
//	              [-chaos SEED]
//	              [-log stderr|PATH] [-log-level info]
//
// Load-generator mode (used by the CI chaos smoke and handy interactively)
// drives a running daemon with the retrying client and prints a JSON
// summary of its books instead of serving:
//
//	dewrite-serve -load ADDR [-load-requests 4096] [-load-conns 4]
//	              [-load-seed 1] [-load-deadline 2s] [-load-value 64]
//
// The service is a workload harness for the simulator, not a real database:
// values live in simulated encrypted NVM lines and all persistence is
// in-memory except the snapshot directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dewrite/internal/chaos"
	"dewrite/internal/rng"
)

// buildLogger constructs the optional structured logger: dest "" disables
// logging entirely (the default — the hot path pays one nil check), "stderr"
// streams JSON records to stderr, anything else appends to that file.
func buildLogger(dest, level string) (*slog.Logger, func(), error) {
	if dest == "" {
		return nil, func() {}, nil
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, nil, fmt.Errorf("dewrite-serve: -log-level %q: %w", level, err)
	}
	w, cleanup := os.Stderr, func() {}
	if dest != "stderr" {
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("dewrite-serve: -log: %w", err)
		}
		w, cleanup = f, func() { f.Close() }
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lv})), cleanup, nil
}

// loadSummary is the JSON the load generator prints: the client-side half of
// the books-balance equation, summed over every connection.
type loadSummary struct {
	Requests uint64     `json:"requests"` // attempted logical requests (puts+gets)
	Failed   uint64     `json:"failed"`   // logical requests that exhausted retries
	Stats    RetryStats `json:"stats"`    // summed RetryClient counters
}

// runLoad drives addr with conns retrying clients, each issuing a
// deterministic put/get mix derived from seed, and prints a loadSummary.
func runLoad(addr string, requests, conns int, seed uint64, deadline time.Duration, valueLen int) error {
	if conns < 1 {
		conns = 1
	}
	if valueLen > ValueCap {
		valueLen = ValueCap
	}
	var mu sync.Mutex
	var sum loadSummary
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := NewRetryClient(RetryOptions{
				Addr:     addr,
				Deadline: deadline,
				Seed:     seed + uint64(id)*0x9e3779b97f4a7c15,
			})
			defer cl.Close()
			src := rng.New(seed ^ uint64(id)<<32)
			var failed uint64
			n := requests / conns
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("k-%d-%d", id, src.Uint64n(uint64(n)))
				if src.Bool(0.6) {
					val := make([]byte, valueLen)
					for j := range val {
						val[j] = byte(src.Uint64n(8)) // low entropy → dedup hits
					}
					if err := cl.Put(key, val); err != nil {
						failed++
					}
				} else {
					if _, _, err := cl.Get(key); err != nil {
						failed++
					}
				}
			}
			st := cl.Stats()
			mu.Lock()
			sum.Requests += uint64(n)
			sum.Failed += failed
			sum.Stats.Received += st.Received
			sum.Stats.OK += st.OK
			sum.Stats.NotFound += st.NotFound
			sum.Stats.Busy += st.Busy
			sum.Stats.Deadline += st.Deadline
			sum.Stats.ErrResponses += st.ErrResponses
			sum.Stats.TransportErrors += st.TransportErrors
			sum.Stats.Reconnects += st.Reconnects
			sum.Stats.Retries += st.Retries
			sum.Stats.GiveUps += st.GiveUps
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	out, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func main() {
	addr := flag.String("addr", ":7420", "TCP listen address for the framed KV protocol")
	metrics := flag.String("metrics", ":9420", "HTTP listen address for /metrics, /readyz, /healthz, /debug/slow, /debug/vars (empty disables)")
	shards := flag.Int("shards", 4, "controller shards (owner goroutines)")
	lines := flag.Uint64("lines", 1<<16, "data lines striped across shards")
	advanceEvery := flag.Uint64("advance-every", 1024, "requests between cross-shard directory advances")
	slowK := flag.Int("slow-k", 32, "capacity of the /debug/slow slowest-recent-requests ring")
	queueDepth := flag.Int("queue-depth", 64, "per-shard mailbox bound; overflow sheds with BUSY")
	deadline := flag.Duration("deadline", 0, "default per-request deadline for frames that carry none (0 disables)")
	shedHigh := flag.Float64("shed-high", 0.9, "drain-mode entry watermark as a fraction of queue-depth")
	shedLow := flag.Float64("shed-low", 0.5, "drain-mode exit watermark as a fraction of queue-depth")
	snapshotDir := flag.String("snapshot-dir", "", "directory for crash-safe state snapshots (empty disables)")
	snapshotEvery := flag.Uint64("snapshot-every", 8, "epoch advances between snapshots")
	snapshotKeep := flag.Int("snapshot-keep", 3, "snapshot generations to retain")
	chaosSeed := flag.Uint64("chaos", 0, "arm the deterministic fault plan with this seed (0 disables)")
	logDest := flag.String("log", "", `structured JSON log destination: "stderr" or a file path (empty disables)`)
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")

	loadAddr := flag.String("load", "", "load-generator mode: drive this daemon address instead of serving")
	loadRequests := flag.Int("load-requests", 4096, "load mode: total logical requests across connections")
	loadConns := flag.Int("load-conns", 4, "load mode: concurrent client connections")
	loadSeed := flag.Uint64("load-seed", 1, "load mode: workload and retry-jitter seed")
	loadDeadline := flag.Duration("load-deadline", 2*time.Second, "load mode: per-request deadline")
	loadValue := flag.Int("load-value", 64, "load mode: value length in bytes")
	flag.Parse()

	if *loadAddr != "" {
		if err := runLoad(*loadAddr, *loadRequests, *loadConns, *loadSeed, *loadDeadline, *loadValue); err != nil {
			log.Fatal(err)
		}
		return
	}

	logger, logClose, err := buildLogger(*logDest, *logLevel)
	if err != nil {
		log.Fatal(err)
	}
	defer logClose()

	var plan *chaos.Plan
	if *chaosSeed != 0 {
		plan = chaos.Default(*chaosSeed)
	}

	srv, err := NewServer(Config{
		Shards: *shards, Lines: *lines, AdvanceEvery: *advanceEvery,
		SlowK: *slowK, Logger: logger,
		QueueDepth: *queueDepth, DefaultDeadline: *deadline,
		ShedHighWater: *shedHigh, ShedLowWater: *shedLow,
		SnapshotDir: *snapshotDir, SnapshotEvery: *snapshotEvery, SnapshotKeep: *snapshotKeep,
		Chaos: plan,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The ops endpoint comes up before Serve recovers state and publishes
	// generation zero, so a load balancer probing /readyz sees 503 until the
	// daemon can actually answer requests (recovery + scrub included) —
	// /healthz is process liveness, /readyz is readiness.
	if *metrics != "" {
		m, err := startOps(*metrics, srv)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		fmt.Printf("dewrite-serve: metrics on http://%s/metrics (readyz, debug/slow alongside)\n", m.Addr())
	}

	if err := srv.Serve(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dewrite-serve: %d shards over %d lines, listening on %s\n", *shards, *lines, srv.Addr())
	if plan != nil {
		fmt.Printf("dewrite-serve: chaos plan armed (seed %d)\n", plan.Seed)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dewrite-serve: shutting down")
	srv.Close()
}

package main

import "dewrite/internal/monitor"

// startMetrics brings up the ops HTTP surface over the server's registry,
// reusing the monitor package's /metrics, /debug/vars and /healthz handlers.
func startMetrics(addr string, srv *Server) (*monitor.Server, error) {
	return monitor.Serve(addr, srv.Registry())
}

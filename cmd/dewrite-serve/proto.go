package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"dewrite/internal/config"
)

// The wire protocol is a minimal length-prefixed framing over TCP, one
// request/response pair at a time per connection (clients may pipeline by
// opening several connections).
//
//	request:  op(1) keyLen(2 BE) valLen(4 BE) deadlineMs(2 BE) key val
//	response: status(1) valLen(4 BE) val
//
// deadlineMs is the client's per-request deadline budget in milliseconds
// (0 = none): the shard owner answers StatusDeadline without touching the
// controller once the budget has expired, so a slow epoch barrier turns into
// a fast retryable verdict instead of a stranded connection.
//
// Values are at most ValueCap bytes — one NVM line minus the stored length
// prefix — and keys at most MaxKeyLen. OpStats takes no key and returns the
// metric registry snapshot as JSON.
//
// StatusBusy and StatusDeadline are the retryable verdicts: BUSY means the
// request was shed by admission control (queue full or watermark drain mode)
// before reaching a controller, DEADLINE means it was admitted but its budget
// expired in the queue. Neither counts toward serve_requests_total — they
// land in serve_shed_total — so client-received responses always equal
// serve_requests_total + serve_shed_total (the books-balance invariant the
// chaos soak pins).
const (
	OpPut   byte = 1
	OpGet   byte = 2
	OpStats byte = 3

	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusError    byte = 2
	// StatusBusy is the typed load-shed verdict: the server refused to admit
	// the request. Retryable after backoff.
	StatusBusy byte = 3
	// StatusDeadline reports the request's deadline expired before the shard
	// owner could execute it. Retryable if the client's budget allows.
	StatusDeadline byte = 4

	// MaxKeyLen bounds request keys.
	MaxKeyLen = 1024
	// ValueCap is the largest storable value: each value occupies one line,
	// led by a 2-byte length so reads return exactly what was put.
	ValueCap = config.LineSize - 2
	// maxStatsLen bounds the only response larger than a line (OpStats).
	maxStatsLen = 1 << 20
)

// writeRequest frames one request onto w. deadlineMs is the per-request
// budget in milliseconds (0 = none).
func writeRequest(w io.Writer, op byte, key string, val []byte, deadlineMs uint16) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("key length %d exceeds %d", len(key), MaxKeyLen)
	}
	if len(val) > ValueCap {
		return fmt.Errorf("value length %d exceeds %d", len(val), ValueCap)
	}
	hdr := make([]byte, 9, 9+len(key)+len(val))
	hdr[0] = op
	binary.BigEndian.PutUint16(hdr[1:3], uint16(len(key)))
	binary.BigEndian.PutUint32(hdr[3:7], uint32(len(val)))
	binary.BigEndian.PutUint16(hdr[7:9], deadlineMs)
	hdr = append(hdr, key...)
	hdr = append(hdr, val...)
	_, err := w.Write(hdr)
	return err
}

// readRequest parses one request frame from r.
func readRequest(r io.Reader) (op byte, key string, val []byte, deadlineMs uint16, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", nil, 0, err
	}
	op = hdr[0]
	keyLen := int(binary.BigEndian.Uint16(hdr[1:3]))
	valLen := int(binary.BigEndian.Uint32(hdr[3:7]))
	deadlineMs = binary.BigEndian.Uint16(hdr[7:9])
	if keyLen > MaxKeyLen {
		return 0, "", nil, 0, fmt.Errorf("key length %d exceeds %d", keyLen, MaxKeyLen)
	}
	if valLen > ValueCap {
		return 0, "", nil, 0, fmt.Errorf("value length %d exceeds %d", valLen, ValueCap)
	}
	buf := make([]byte, keyLen+valLen)
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, "", nil, 0, err
	}
	return op, string(buf[:keyLen]), buf[keyLen:], deadlineMs, nil
}

// writeResponse frames one response onto w.
func writeResponse(w io.Writer, status byte, val []byte) error {
	hdr := make([]byte, 5, 5+len(val))
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(val)))
	hdr = append(hdr, val...)
	_, err := w.Write(hdr)
	return err
}

// readResponse parses one response frame from r.
func readResponse(r io.Reader) (status byte, val []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	valLen := int(binary.BigEndian.Uint32(hdr[1:5]))
	if valLen > maxStatsLen {
		return 0, nil, fmt.Errorf("response length %d exceeds %d", valLen, maxStatsLen)
	}
	val = make([]byte, valLen)
	if _, err = io.ReadFull(r, val); err != nil {
		return 0, nil, err
	}
	return hdr[0], val, nil
}

// Client is a minimal synchronous client for the framed protocol, used by
// the end-to-end tests and handy for smoke-testing a live server.
type Client struct {
	conn net.Conn
	rw   *bufio.ReadWriter
}

// Dial connects a client to a dewrite-serve address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		rw:   bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn)),
	}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, key string, val []byte) (byte, []byte, error) {
	if err := writeRequest(c.rw, op, key, val, 0); err != nil {
		return 0, nil, err
	}
	if err := c.rw.Flush(); err != nil {
		return 0, nil, err
	}
	return readResponse(c.rw)
}

// statusName renders a response status for errors and logs.
func statusName(status byte) string {
	switch status {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not_found"
	case StatusError:
		return "error"
	case StatusBusy:
		return "busy"
	case StatusDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("status_%d", status)
	}
}

// Put stores val under key.
func (c *Client) Put(key string, val []byte) error {
	status, _, err := c.roundTrip(OpPut, key, val)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("put %q: status %d", key, status)
	}
	return nil
}

// Get returns the value stored under key; found is false when the key has
// never been put.
func (c *Client) Get(key string) (val []byte, found bool, err error) {
	status, val, err := c.roundTrip(OpGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case StatusOK:
		return val, true, nil
	case StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("get %q: status %d", key, status)
	}
}

// Stats returns the server's metric snapshot as JSON.
func (c *Client) Stats() ([]byte, error) {
	status, val, err := c.roundTrip(OpStats, "", nil)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("stats: status %d", status)
	}
	return val, nil
}

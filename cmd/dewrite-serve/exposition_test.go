package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestServeExposition is the end-to-end observability check CI runs as a
// smoke test: boot the daemon with its ops endpoint on a random port, drive
// client load, then validate the /metrics exposition the way a Prometheus
// scraper would — TYPE lines for all three metric kinds, cumulative
// (monotone) histogram buckets, and le="+Inf" equal to _count for every
// histogram series. When DEWRITE_SCRAPE_OUT is set the raw scrape is written
// there so CI can archive it as an artifact.
func TestServeExposition(t *testing.T) {
	srv, err := NewServer(Config{Shards: 4, Lines: 1 << 12, AdvanceEvery: 16, SlowK: 8})
	if err != nil {
		t.Fatal(err)
	}
	ops, err := startOps("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ops.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Before Serve publishes generation zero the daemon is alive but not
	// ready: /healthz 200, /readyz 503.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before Serve: %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Fatalf("/readyz before generation zero: %d %q", code, body)
	}

	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after generation zero: %d", code)
	}

	// Drive enough load to populate every metric kind and cross barriers.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("user:%d", k%40)
		if err := c.Put(key, []byte(fmt.Sprintf(`{"n":%d}`, k%3))); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}

	code, scrape := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if out := os.Getenv("DEWRITE_SCRAPE_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(scrape), 0o644); err != nil {
			t.Fatalf("DEWRITE_SCRAPE_OUT: %v", err)
		}
	}
	validateExposition(t, scrape)

	// The metric families the daemon promises (see ops.go) are all present.
	for _, want := range []string{
		"# TYPE dewrite_serve_ready gauge",
		"# TYPE dewrite_serve_requests_total counter",
		"# TYPE dewrite_serve_request_latency_ns histogram",
		"# TYPE dewrite_serve_barrier_stall_ns_total counter",
		"# TYPE dewrite_serve_advances_total counter",
		`dewrite_serve_requests_total{op="put"} 200`,
		`dewrite_serve_requests_total{op="get"} 200`,
		`dewrite_serve_requests_total{op="stats"} 1`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// /debug/slow is valid JSON holding real captured requests.
	code, slow := get("/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/debug/slow: %d", code)
	}
	var ring struct {
		K       int         `json:"k"`
		Slowest []slowEntry `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(slow), &ring); err != nil {
		t.Fatalf("/debug/slow not valid JSON: %v\n%s", err, slow)
	}
	if ring.K != 8 || len(ring.Slowest) == 0 {
		t.Fatalf("/debug/slow empty after 401 requests: %s", slow)
	}
}

// validateExposition checks the whole scrape the way a strict scraper would:
// every sample belongs to a TYPE-declared family, histogram buckets are
// cumulative with ascending le values, and le="+Inf" equals _count per series.
func validateExposition(t *testing.T, scrape string) {
	t.Helper()
	types := make(map[string]string)
	// series → ordered (le, count) buckets; sums/counts keyed by full series.
	type histSeries struct {
		les    []float64 // +Inf as math.Inf is fine via ParseFloat
		counts []float64
	}
	hists := make(map[string]*histSeries)
	counts := make(map[string]float64)
	histFamilies := 0

	stripLe := func(labels string) string {
		if labels == "" {
			return ""
		}
		var kept []string
		for _, kv := range strings.Split(labels[1:len(labels)-1], ",") {
			if !strings.HasPrefix(kv, `le="`) {
				kept = append(kept, kv)
			}
		}
		if len(kept) == 0 {
			return ""
		}
		return "{" + strings.Join(kept, ",") + "}"
	}

	for ln, line := range strings.Split(strings.TrimRight(scrape, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, f[2])
			}
			types[f[2]] = f[3]
			if f[3] == "histogram" {
				histFamilies++
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value in %q", ln+1, line)
		}
		value, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q", ln+1, line)
		}
		name, labels := line[:sp], ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name, labels = name[:i], name[i:]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: sample %s has no TYPE declaration", ln+1, name)
		}
		if types[family] != "histogram" {
			continue
		}
		series := family + stripLe(labels)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le := ""
			for _, kv := range strings.Split(labels[1:len(labels)-1], ",") {
				if v, ok := strings.CutPrefix(kv, `le="`); ok {
					le = strings.TrimSuffix(v, `"`)
				}
			}
			lev, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("line %d: bad le %q", ln+1, le)
			}
			h := hists[series]
			if h == nil {
				h = &histSeries{}
				hists[series] = h
			}
			h.les = append(h.les, lev)
			h.counts = append(h.counts, value)
		case strings.HasSuffix(name, "_count"):
			counts[series] = value
		}
	}

	if histFamilies == 0 {
		t.Fatal("no histogram family in the scrape")
	}
	for series, h := range hists {
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Fatalf("%s: le values not ascending at bucket %d", series, i)
			}
			if h.counts[i] < h.counts[i-1] {
				t.Fatalf("%s: bucket counts not cumulative at %d (%g < %g)",
					series, i, h.counts[i], h.counts[i-1])
			}
		}
		last := len(h.les) - 1
		if !strings.Contains(strconv.FormatFloat(h.les[last], 'g', -1, 64), "Inf") {
			t.Fatalf("%s: last bucket le=%g is not +Inf", series, h.les[last])
		}
		total, ok := counts[series]
		if !ok {
			t.Fatalf("%s: no _count sample", series)
		}
		if h.counts[last] != total {
			t.Fatalf(`%s: le="+Inf" %g != _count %g`, series, h.counts[last], total)
		}
	}
}

package main

import (
	"testing"

	"dewrite/internal/monitor"
)

// TestUnknownOpIsCounted is the regression test for the books leak the
// booksbalance analyzer found: a frame with an opcode the protocol doesn't
// know gets a flushed StatusError response, so it must land in
// serve_requests_total — under op="unknown" — or client-received responses
// drift away from requests_total + shed_total.
func TestUnknownOpIsCounted(t *testing.T) {
	srv, err := NewServer(Config{Shards: 2, Lines: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One known op to prove the per-op books still work, then two bogus
	// opcodes on the same connection.
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	const bogusOp = 9
	for i := 0; i < 2; i++ {
		status, val, err := c.roundTrip(bogusOp, "k", nil)
		if err != nil {
			t.Fatalf("round-tripping unknown op: %v", err)
		}
		if status != StatusError {
			t.Fatalf("unknown op answered status %d, want StatusError", status)
		}
		if string(val) != "unknown op" {
			t.Fatalf("unknown op answered %q", val)
		}
	}

	reg := srv.Registry()
	unknown := reg.Counter("serve_requests_total",
		monitor.Label{Key: "op", Value: "unknown"}).Value()
	if unknown != 2 {
		t.Fatalf("serve_requests_total{op=%q} = %d, want 2", "unknown", unknown)
	}
	if errs := reg.Counter("serve_errors_total",
		monitor.Label{Key: "op", Value: "unknown"},
		monitor.Label{Key: "cause", Value: "unknown_op"}).Value(); errs != 2 {
		t.Fatalf("serve_errors_total{op=unknown,cause=unknown_op} = %d, want 2", errs)
	}
	// The client received 3 responses (1 put + 2 errors): the books must
	// balance including the unknown bucket.
	checkBooks(t, srv, 3)
}

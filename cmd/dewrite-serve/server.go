package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/hashes"
	"dewrite/internal/monitor"
	"dewrite/internal/shard"
	"dewrite/internal/timeline"
	"dewrite/internal/units"
)

// Server is the long-running sharded secure-NVM key-value service: the
// line address space is partitioned across shards, each owned by a single
// goroutine that drives its own DeWrite controller (dedup tables, metadata
// caches, bank queues, wear state) in simulated time, with the cross-shard
// fingerprint directory shared between them.
//
// Concurrency follows the simulator's shard contract: controllers are
// single-threaded, so all access to one shard's state happens on its owner
// goroutine; the directory's pending side is safe for concurrent publishes,
// and its frozen side is only advanced under the epoch write-lock, which
// every owner holds read-side while serving a request. Advancing is
// therefore a brief stop-the-world barrier, exactly the simulator's epoch
// boundary transplanted to wall-clock time.
//
// The ops surface is RED-complete: request/error counters and wall-clock
// latency histograms per op, per-shard queue and occupancy gauges, barrier
// stall accounting, a slowest-recent-requests ring (/debug/slow), and
// structured JSON logs whose request IDs match the ring's entries. See
// ops.go for the full metric table.
type Server struct {
	cfg    Config
	router shard.Router
	dir    *shard.Directory
	shards []*shardWorker
	reg    *monitor.Registry
	m      *serveMetrics
	slow   *slowRing
	log    *slog.Logger // nil disables logging entirely

	// epochMu is the epoch barrier: owners serve requests under RLock;
	// the directory advance runs under Lock.
	epochMu sync.RWMutex
	// fingerMask truncates CRC-32 fingerprints to the configured dedup hash
	// width so the cross-shard census uses the controller's own equivalence
	// classes.
	fingerMask uint32

	// ready flips once generation zero has published (the first Advance);
	// /readyz answers 503 until then.
	ready atomic.Bool
	// reqID assigns frame IDs: every request read off any connection gets
	// the next ID, correlating /debug/slow entries with log lines.
	reqID  atomic.Uint64
	connID atomic.Uint64

	ln      net.Listener
	quit    chan struct{}
	conns   sync.WaitGroup
	connMu  sync.Mutex
	open    map[net.Conn]struct{}
	owners  sync.WaitGroup
	closing sync.Once
}

// Config sizes the server.
type Config struct {
	// Shards is the number of controller shards (owner goroutines).
	Shards int
	// Lines is the global number of data lines, striped across shards.
	Lines uint64
	// AdvanceEvery advances the cross-shard directory after this many
	// served requests (approximately); <= 0 defaults to 1024.
	AdvanceEvery uint64
	// NVM overrides the simulator config; zero value uses config.Default().
	NVM config.Config
	// Logger, when non-nil, receives structured events (connection
	// open/close, epoch advances, slow requests, shutdown). nil disables
	// logging with zero per-request cost.
	Logger *slog.Logger
	// SlowK is the capacity of the slow-request ring (/debug/slow);
	// <= 0 defaults to 32.
	SlowK int
	// SlowWindow is the ring's recency window in frames; 0 defaults to 65536.
	SlowWindow uint64
}

// shardReq is one routed request handed to a shard owner.
type shardReq struct {
	op    byte
	key   string
	val   []byte
	reply chan shardResp
}

type shardResp struct {
	status byte
	val    []byte
	cause  string // non-empty on StatusError: the serve_errors_total cause
}

// shardWorker owns one shard: its controller, its key→line directory, and
// its simulated clock. Everything here is touched only by the owner
// goroutine.
type shardWorker struct {
	id   int
	ctrl *core.Controller
	reqs chan shardReq

	slots map[string]uint64
	next  uint64
	cap   uint64
	now   units.Time

	puts, gets, misses, full uint64
	crossDup                 uint64
	served                   uint64 // since last advance
	readBuf                  [config.LineSize]byte
}

// NewServer builds the sharded service and starts its owner goroutines; call
// Serve to accept connections and Close to tear everything down. The server
// is not ready (in the /readyz sense) until Serve publishes generation zero.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dewrite-serve: %d shards", cfg.Shards)
	}
	if cfg.Lines == 0 {
		cfg.Lines = 1 << 16
	}
	if cfg.AdvanceEvery == 0 {
		cfg.AdvanceEvery = 1024
	}
	if cfg.SlowK <= 0 {
		cfg.SlowK = 32
	}
	nvmCfg := cfg.NVM
	if nvmCfg.NVM.Banks() == 0 {
		nvmCfg = config.Default()
	}

	s := &Server{
		cfg:    cfg,
		router: shard.NewRouter(cfg.Shards),
		dir:    shard.NewDirectory(cfg.Shards),
		reg:    monitor.NewRegistry(),
		slow:   newSlowRing(cfg.SlowK, cfg.SlowWindow),
		log:    cfg.Logger,
		quit:   make(chan struct{}),
		open:   make(map[net.Conn]struct{}),
	}
	s.m = newServeMetrics(s.reg, cfg.Shards)
	s.reg.Set("serve_ready", 0)
	s.fingerMask = ^uint32(0)
	if bits := nvmCfg.Dedup.HashSizeBits; bits > 0 && bits < 32 {
		s.fingerMask = uint32(1)<<bits - 1
	}

	// Each shard owns an equal slice of the device's banks on one rank.
	shardCfg := nvmCfg
	shardCfg.NVM.Ranks = 1
	shardCfg.NVM.BanksPerRank = nvmCfg.NVM.Banks() / cfg.Shards
	if shardCfg.NVM.BanksPerRank < 1 {
		shardCfg.NVM.BanksPerRank = 1
	}

	for i := 0; i < cfg.Shards; i++ {
		w := &shardWorker{
			id:    i,
			reqs:  make(chan shardReq, 64),
			slots: make(map[string]uint64),
			cap:   s.router.LinesFor(i, cfg.Lines),
		}
		w.ctrl = core.New(core.Options{DataLines: w.cap, Config: shardCfg})
		d, id := s.dir, i
		w.ctrl.Tables().SetPublish(func(h uint32, delta int) { d.Publish(id, h, delta) })
		s.shards = append(s.shards, w)
		s.owners.Add(1)
		go s.runOwner(w)
	}
	return s, nil
}

// Ready reports whether generation zero has published — the /readyz probe.
func (s *Server) Ready() bool { return s != nil && s.ready.Load() }

// logEvent emits one structured log record; a nil logger costs one branch.
func (s *Server) logEvent(level slog.Level, msg string, args ...any) {
	if s.log == nil {
		return
	}
	s.log.Log(context.Background(), level, msg, args...)
}

// shardOf routes a key: shards own key-hash classes, the serving analog of
// the simulator's address striping.
func (s *Server) shardOf(key string) int {
	return int(hashes.CRC32([]byte(key)) % uint32(len(s.shards)))
}

// runOwner is a shard's single-threaded service loop. The time an owner
// spends blocked acquiring the epoch read-lock is exactly the time it stood
// at a barrier waiting for an Advance to finish, so it lands in the shard's
// serve_barrier_stall_ns_total counter — per-shard barrier pressure,
// scrapeable as a rate.
func (s *Server) runOwner(w *shardWorker) {
	defer s.owners.Done()
	stall := s.m.stalls[w.id]
	for req := range w.reqs {
		t0 := time.Now()
		s.epochMu.RLock()
		if wait := time.Since(t0); wait > 0 {
			stall.Add(uint64(wait.Nanoseconds()))
		}
		resp := w.handle(s, req)
		advance := w.served >= s.cfg.AdvanceEvery
		s.epochMu.RUnlock()
		req.reply <- resp
		if advance {
			s.Advance()
		}
	}
}

// handle executes one request against the shard's controller. Runs on the
// owner goroutine under the epoch read-lock.
func (w *shardWorker) handle(s *Server, req shardReq) shardResp {
	w.served++
	switch req.op {
	case OpPut:
		slot, ok := w.slots[req.key]
		if !ok {
			if w.next >= w.cap {
				w.full++
				return shardResp{status: StatusError, val: []byte("shard full"), cause: "shard_full"}
			}
			slot = w.next
			w.next++
			w.slots[req.key] = slot
		}
		var line [config.LineSize]byte
		binary.BigEndian.PutUint16(line[:2], uint16(len(req.val)))
		copy(line[2:], req.val)
		if s.dir.HeldElsewhere(hashes.CRC32(line[:])&s.fingerMask, w.id) {
			w.crossDup++
		}
		w.now = w.ctrl.Write(w.now, slot, line[:])
		w.puts++
		return shardResp{status: StatusOK}
	case OpGet:
		slot, ok := w.slots[req.key]
		if !ok {
			w.misses++
			return shardResp{status: StatusNotFound}
		}
		w.now = w.ctrl.ReadInto(w.now, slot, w.readBuf[:])
		w.gets++
		n := int(binary.BigEndian.Uint16(w.readBuf[:2]))
		if n > ValueCap {
			return shardResp{status: StatusError, val: []byte("corrupt length prefix"), cause: "corrupt_value"}
		}
		return shardResp{status: StatusOK, val: append([]byte(nil), w.readBuf[2:2+n]...)}
	default:
		return shardResp{status: StatusError, val: []byte("unknown op"), cause: "unknown_op"}
	}
}

// Advance runs one epoch barrier: waits for every in-flight request to
// finish, folds the directory's pending deltas into the next frozen
// generation, and republishes the per-shard gauges. Owners resume as soon
// as the lock drops. The first Advance publishes generation zero and flips
// the readiness probe.
func (s *Server) Advance() {
	t0 := time.Now()
	s.epochMu.Lock()
	s.dir.Advance()
	for _, w := range s.shards {
		w.served = 0
		s.publishShard(w)
	}
	for i, n := range s.dir.EpochPublishes() {
		s.reg.SetLabeled("serve_directory_publishes",
			[]monitor.Label{{Key: "shard", Value: strconv.Itoa(i)}}, float64(n))
	}
	st := s.dir.Snapshot()
	s.reg.Set("serve_directory_fingerprints", float64(st.Fingerprints))
	s.reg.Set("serve_directory_locations", float64(st.Locations))
	s.reg.Set("serve_directory_shared", float64(st.Shared))
	s.reg.Set("serve_directory_advances", float64(st.Advances))
	s.epochMu.Unlock()

	held := time.Since(t0)
	s.m.advances.Inc()
	s.m.advanceNs.Add(uint64(held.Nanoseconds()))
	if s.ready.CompareAndSwap(false, true) {
		s.reg.Set("serve_ready", 1)
	}
	s.logEvent(slog.LevelInfo, "epoch_advance",
		"generation", st.Advances,
		"fingerprints", st.Fingerprints,
		"held_ns", held.Nanoseconds())
}

// publishShard refreshes one shard's gauges. Caller holds the epoch
// write-lock (the owner is parked, so its state is stable).
func (s *Server) publishShard(w *shardWorker) {
	labels := []monitor.Label{{Key: "shard", Value: strconv.Itoa(w.id)}}
	s.reg.SetLabeled("serve_puts", labels, float64(w.puts))
	s.reg.SetLabeled("serve_gets", labels, float64(w.gets))
	s.reg.SetLabeled("serve_misses", labels, float64(w.misses))
	s.reg.SetLabeled("serve_cross_shard_dup_hits", labels, float64(w.crossDup))
	s.reg.SetLabeled("serve_keys", labels, float64(len(w.slots)))
	s.reg.SetLabeled("serve_occupancy", labels, float64(w.next)/float64(w.cap))

	var e timeline.Epoch
	w.ctrl.SampleEpoch(&e, w.now)
	s.reg.PublishEpoch("serve_shard_"+strconv.Itoa(w.id), &e)
}

// Registry exposes the metric registry (for the ops HTTP server and tests).
func (s *Server) Registry() *monitor.Registry { return s.reg }

// Serve publishes generation zero (flipping /readyz to ready) and accepts
// client connections on addr until Close. It returns once the listener is
// bound; accepting runs in the background.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	// Publish generation zero so the ops surface is populated from the first
	// scrape; until here /readyz answers 503.
	s.Advance()
	s.conns.Add(1)
	go func() {
		defer s.conns.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.quit:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
			s.conns.Add(1)
			go func() {
				defer s.conns.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// track registers a live client connection so shutdown can interrupt its
// blocked read; it reports false when the server is already closing.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.quit:
		return false
	default:
	}
	s.open[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.open, conn)
	s.connMu.Unlock()
}

// closedForShutdown reports whether a read error is the expected result of
// connection teardown rather than a client protocol violation.
func closedForShutdown(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

// serveConn handles one client stream: a sequence of framed requests, each
// answered in order. Requests route to shard owners by key hash; the
// connection goroutine blocks on the owner's reply, so each stream sees its
// own operations in program order.
//
// Shutdown contract: once a request frame has been read it is always
// processed and its response always written — quit is only honored between
// frames, so in-flight requests are never dropped. Counters count flushed
// responses, which is what makes the shutdown test's books balance.
func (s *Server) serveConn(conn net.Conn) {
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer s.untrack(conn)
	defer conn.Close()
	cid := s.connID.Add(1)
	s.m.connsTotal.Inc()
	s.reg.Add("serve_connections_open", 1)
	defer s.reg.Add("serve_connections_open", -1)
	s.logEvent(slog.LevelInfo, "conn_open", "conn", cid, "remote", conn.RemoteAddr().String())
	var served uint64
	defer func() {
		s.logEvent(slog.LevelInfo, "conn_close", "conn", cid, "served", served)
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	reply := make(chan shardResp, 1)
	for {
		op, key, val, err := readRequest(br)
		if err != nil {
			if !closedForShutdown(err) {
				s.errorCause(op, "bad_frame")
				s.logEvent(slog.LevelWarn, "bad_frame", "conn", cid, "err", err.Error())
				_ = writeResponse(bw, StatusError, []byte(err.Error()))
				_ = bw.Flush()
			}
			return
		}
		rid := s.reqID.Add(1)
		start := time.Now()
		shardID := -1
		var resp shardResp
		switch op {
		case OpStats:
			snap, err := json.Marshal(s.reg.Snapshot())
			if err != nil {
				resp = shardResp{status: StatusError, val: []byte(err.Error()), cause: "encode"}
			} else {
				resp = shardResp{status: StatusOK, val: snap}
			}
		case OpPut, OpGet:
			shardID = s.shardOf(key)
			w := s.shards[shardID]
			w.reqs <- shardReq{op: op, key: key, val: val, reply: reply}
			s.reg.Set(s.m.queueDepthKey[shardID], float64(len(w.reqs)))
			resp = <-reply
		default:
			resp = shardResp{status: StatusError, val: []byte("unknown op"), cause: "unknown_op"}
		}
		if err := writeResponse(bw, resp.status, resp.val); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		served++
		lat := time.Since(start)
		s.observe(rid, op, shardID, lat, resp)

		// Between frames is the only place quit is honored: the response
		// above is flushed, so closing here drops nothing.
		select {
		case <-s.quit:
			return
		default:
		}
	}
}

// observe records one flushed response in the RED instruments, the slow
// ring, and (when slow) the structured log.
func (s *Server) observe(rid uint64, op byte, shardID int, lat time.Duration, resp shardResp) {
	idx := int(op) - 1
	if idx < 0 || idx >= len(s.m.requests) {
		idx = -1
	}
	if idx >= 0 {
		s.m.requests[idx].Inc()
		s.m.latency[idx].Observe(uint64(lat.Nanoseconds()))
	}
	if resp.status == StatusError && resp.cause != "" {
		s.errorCause(op, resp.cause)
	}
	if s.slow.record(slowEntry{ID: rid, Op: opName(op), Shard: shardID, LatencyNs: lat.Nanoseconds()}) {
		s.m.slowTotal.Inc()
		s.logEvent(slog.LevelDebug, "slow_request",
			"req", rid, "op", opName(op), "shard", shardID, "latency_ns", lat.Nanoseconds())
	}
}

// Close stops accepting, lets every in-flight request finish and flush its
// response, tears the client connections down, stops the owners, and runs
// one final advance so the gauges reflect the end state. The listener is
// closed exactly once; extra Close calls (including concurrent ones) wait on
// nothing and change nothing.
func (s *Server) Close() {
	s.closing.Do(func() {
		s.logEvent(slog.LevelInfo, "shutdown_begin", "conns_open", func() int {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			return len(s.open)
		}())
		close(s.quit)
		if s.ln != nil {
			s.ln.Close()
		}
		// Interrupt reads blocked waiting for a next frame: connection
		// goroutines check quit after each flushed response, and an expired
		// read deadline unblocks the ones sitting idle in readRequest. A
		// frame already read is still fully served (see serveConn).
		s.connMu.Lock()
		for conn := range s.open {
			_ = conn.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.conns.Wait()
		for _, w := range s.shards {
			close(w.reqs)
		}
		s.owners.Wait()
		s.Advance()
		s.logEvent(slog.LevelInfo, "shutdown_complete", "requests", s.reqID.Load())
	})
}

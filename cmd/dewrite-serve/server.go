package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dewrite/internal/chaos"
	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/hashes"
	"dewrite/internal/monitor"
	"dewrite/internal/shard"
	"dewrite/internal/timeline"
	"dewrite/internal/units"
)

// Server is the long-running sharded secure-NVM key-value service: the
// line address space is partitioned across shards, each owned by a single
// goroutine that drives its own DeWrite controller (dedup tables, metadata
// caches, bank queues, wear state) in simulated time, with the cross-shard
// fingerprint directory shared between them.
//
// Concurrency follows the simulator's shard contract: controllers are
// single-threaded, so all access to one shard's state happens on its owner
// goroutine; the directory's pending side is safe for concurrent publishes,
// and its frozen side is only advanced under the epoch write-lock, which
// every owner holds read-side while serving a request. Advancing is
// therefore a brief stop-the-world barrier, exactly the simulator's epoch
// boundary transplanted to wall-clock time.
//
// The ops surface is RED-complete: request/error counters and wall-clock
// latency histograms per op, per-shard queue and occupancy gauges, barrier
// stall accounting, a slowest-recent-requests ring (/debug/slow), and
// structured JSON logs whose request IDs match the ring's entries. See
// ops.go for the full metric table.
type Server struct {
	cfg      Config
	shardCfg config.Config // per-shard controller config (bank slice applied)
	router   shard.Router
	dir      *shard.Directory
	shards   []*shardWorker
	reg      *monitor.Registry
	m        *serveMetrics
	slow     *slowRing
	log      *slog.Logger // nil disables logging entirely
	plan     *chaos.Plan  // nil disables fault injection entirely

	// epochMu is the epoch barrier: owners serve requests under RLock;
	// the directory advance runs under Lock.
	epochMu sync.RWMutex
	// fingerMask truncates CRC-32 fingerprints to the configured dedup hash
	// width so the cross-shard census uses the controller's own equivalence
	// classes.
	fingerMask uint32
	// highWater/lowWater are the admission watermarks in queued requests:
	// a shard whose mailbox reaches highWater enters drain mode and sheds
	// until it falls back to lowWater.
	highWater, lowWater int

	// ready flips once generation zero has published (the first Advance);
	// /readyz answers 503 until then, and again once draining starts.
	ready atomic.Bool
	// draining flips at the start of graceful shutdown: /readyz returns to
	// 503 so load balancers stop routing here while in-flight requests are
	// still being answered.
	draining atomic.Bool
	// reqID assigns frame IDs: every request read off any connection gets
	// the next ID, correlating /debug/slow entries with log lines.
	reqID  atomic.Uint64
	connID atomic.Uint64

	// Snapshot state, touched only under the epoch write-lock.
	nextSnapGen uint64 // generation number the next snapshot will carry
	sinceSnap   uint64 // advances since the last snapshot attempt

	recoverOnce sync.Once
	recoverErr  error

	ln      net.Listener
	quit    chan struct{}
	conns   sync.WaitGroup
	connMu  sync.Mutex
	open    map[net.Conn]struct{}
	owners  sync.WaitGroup
	closing sync.Once
}

// Config sizes the server.
type Config struct {
	// Shards is the number of controller shards (owner goroutines).
	Shards int
	// Lines is the global number of data lines, striped across shards.
	Lines uint64
	// AdvanceEvery advances the cross-shard directory after this many
	// served requests (approximately); <= 0 defaults to 1024.
	AdvanceEvery uint64
	// NVM overrides the simulator config; zero value uses config.Default().
	NVM config.Config
	// Logger, when non-nil, receives structured events (connection
	// open/close, epoch advances, slow requests, shutdown). nil disables
	// logging with zero per-request cost.
	Logger *slog.Logger
	// SlowK is the capacity of the slow-request ring (/debug/slow);
	// <= 0 defaults to 32.
	SlowK int
	// SlowWindow is the ring's recency window in frames; 0 defaults to 65536.
	SlowWindow uint64

	// QueueDepth bounds each shard owner's mailbox; <= 0 defaults to 64.
	// A full mailbox sheds with StatusBusy instead of blocking the
	// connection goroutine.
	QueueDepth int
	// ShedHighWater and ShedLowWater are fractions of QueueDepth: a shard
	// whose mailbox reaches the high watermark enters drain mode (new
	// requests shed with BUSY) until it falls to the low watermark.
	// Zero values default to 0.9 and 0.5.
	ShedHighWater, ShedLowWater float64
	// DefaultDeadline is applied to requests whose frame carries no
	// deadline; 0 means such requests never expire server-side.
	DefaultDeadline time.Duration

	// SnapshotDir, when non-empty, enables crash-safe state: periodic
	// directory-generation snapshots of every shard's controller (plus the
	// server-level key directory), and recovery from the latest valid
	// generation on boot.
	SnapshotDir string
	// SnapshotEvery is the number of epoch advances between snapshots;
	// 0 defaults to 8.
	SnapshotEvery uint64
	// SnapshotKeep is how many generations Prune retains; 0 defaults to 3.
	SnapshotKeep int

	// Chaos, when non-nil, arms the seeded deterministic fault plan:
	// connection resets, slow-loris pacing, shard stalls, and mid-snapshot
	// aborts. nil disables injection entirely.
	Chaos *chaos.Plan
}

// shardReq is one routed request handed to a shard owner.
type shardReq struct {
	op    byte
	key   string
	val   []byte
	reply chan shardResp
	// deadline is the absolute expiry instant (zero = none): the owner
	// answers StatusDeadline without touching the controller once passed.
	deadline time.Time
}

type shardResp struct {
	status byte
	val    []byte
	cause  string // non-empty on StatusError: the serve_errors_total cause
}

// shardWorker owns one shard: its controller, its key→line directory, and
// its simulated clock. Everything here is touched only by the owner
// goroutine.
type shardWorker struct {
	id   int
	ctrl *core.Controller
	reqs chan shardReq

	slots map[string]uint64
	next  uint64
	cap   uint64
	now   units.Time

	puts, gets, misses, full uint64
	crossDup                 uint64
	served                   uint64 // since last advance
	total                    uint64 // lifetime requests dequeued (chaos stall ordinal)
	readBuf                  [config.LineSize]byte

	// drainMode is the shard's watermark state: set when the mailbox
	// reaches the high watermark, cleared at the low watermark. Written by
	// connection goroutines at admission; the flag is advisory (len(chan)
	// is racy), so transitions are heuristics, not invariants.
	drainMode atomic.Bool
}

// NewServer builds the sharded service and starts its owner goroutines; call
// Serve to accept connections and Close to tear everything down. The server
// is not ready (in the /readyz sense) until Serve publishes generation zero.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dewrite-serve: %d shards", cfg.Shards)
	}
	if cfg.Lines == 0 {
		cfg.Lines = 1 << 16
	}
	if cfg.AdvanceEvery == 0 {
		cfg.AdvanceEvery = 1024
	}
	if cfg.SlowK <= 0 {
		cfg.SlowK = 32
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ShedHighWater <= 0 || cfg.ShedHighWater > 1 {
		cfg.ShedHighWater = 0.9
	}
	if cfg.ShedLowWater <= 0 || cfg.ShedLowWater >= cfg.ShedHighWater {
		cfg.ShedLowWater = cfg.ShedHighWater / 2
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 8
	}
	if cfg.SnapshotKeep <= 0 {
		cfg.SnapshotKeep = 3
	}
	nvmCfg := cfg.NVM
	if nvmCfg.NVM.Banks() == 0 {
		nvmCfg = config.Default()
	}

	s := &Server{
		cfg:         cfg,
		router:      shard.NewRouter(cfg.Shards),
		dir:         shard.NewDirectory(cfg.Shards),
		reg:         monitor.NewRegistry(),
		slow:        newSlowRing(cfg.SlowK, cfg.SlowWindow),
		log:         cfg.Logger,
		plan:        cfg.Chaos,
		quit:        make(chan struct{}),
		open:        make(map[net.Conn]struct{}),
		nextSnapGen: 1,
	}
	s.m = newServeMetrics(s.reg, cfg.Shards)
	s.reg.Set("serve_ready", 0)
	s.highWater = int(cfg.ShedHighWater * float64(cfg.QueueDepth))
	if s.highWater < 1 {
		s.highWater = 1
	}
	s.lowWater = int(cfg.ShedLowWater * float64(cfg.QueueDepth))
	s.fingerMask = ^uint32(0)
	if bits := nvmCfg.Dedup.HashSizeBits; bits > 0 && bits < 32 {
		s.fingerMask = uint32(1)<<bits - 1
	}

	// Each shard owns an equal slice of the device's banks on one rank.
	shardCfg := nvmCfg
	shardCfg.NVM.Ranks = 1
	shardCfg.NVM.BanksPerRank = nvmCfg.NVM.Banks() / cfg.Shards
	if shardCfg.NVM.BanksPerRank < 1 {
		shardCfg.NVM.BanksPerRank = 1
	}
	s.shardCfg = shardCfg

	for i := 0; i < cfg.Shards; i++ {
		w := &shardWorker{
			id:    i,
			reqs:  make(chan shardReq, cfg.QueueDepth),
			slots: make(map[string]uint64),
			cap:   s.router.LinesFor(i, cfg.Lines),
		}
		w.ctrl = core.New(core.Options{DataLines: w.cap, Config: shardCfg})
		d, id := s.dir, i
		w.ctrl.Tables().SetPublish(func(h uint32, delta int) { d.Publish(id, h, delta) })
		s.shards = append(s.shards, w)
		s.owners.Add(1)
		go s.runOwner(w)
	}
	return s, nil
}

// Ready is the /readyz probe: true once generation zero has published
// (which happens only after recovery completes — Serve runs Recover first),
// and false again the moment graceful shutdown starts draining, so load
// balancers stop routing here while in-flight requests are still answered.
func (s *Server) Ready() bool { return s != nil && s.ready.Load() && !s.draining.Load() }

// logEvent emits one structured log record; a nil logger costs one branch.
func (s *Server) logEvent(level slog.Level, msg string, args ...any) {
	if s.log == nil {
		return
	}
	s.log.Log(context.Background(), level, msg, args...)
}

// shardOf routes a key: shards own key-hash classes, the serving analog of
// the simulator's address striping.
func (s *Server) shardOf(key string) int {
	return int(hashes.CRC32([]byte(key)) % uint32(len(s.shards)))
}

// runOwner is a shard's single-threaded service loop. The time an owner
// spends blocked acquiring the epoch read-lock is exactly the time it stood
// at a barrier waiting for an Advance to finish, so it lands in the shard's
// serve_barrier_stall_ns_total counter — per-shard barrier pressure,
// scrapeable as a rate.
func (s *Server) runOwner(w *shardWorker) {
	defer s.owners.Done()
	stall := s.m.stalls[w.id]
	for req := range w.reqs {
		t0 := time.Now()
		s.epochMu.RLock()
		if wait := time.Since(t0); wait > 0 {
			stall.Add(uint64(wait.Nanoseconds()))
		}
		w.total++
		if ns := s.plan.ShardStallNs(w.id, w.total); ns > 0 {
			// Injected inside the read-lock so a stall exercises exactly the
			// path a slow controller would: barrier pressure on every other
			// shard and queue growth on this one.
			s.m.chaosStalls.Inc()
			time.Sleep(time.Duration(ns))
		}
		var resp shardResp
		if !req.deadline.IsZero() && time.Now().After(req.deadline) {
			// Expired in the queue: answer the typed retryable verdict
			// without touching the controller, so a backlogged shard fails
			// fast instead of doing work nobody is waiting for.
			resp = shardResp{status: StatusDeadline}
		} else {
			resp = w.handle(s, req)
		}
		advance := w.served >= s.cfg.AdvanceEvery
		s.epochMu.RUnlock()
		req.reply <- resp
		if advance {
			s.Advance()
		}
	}
}

// admit applies admission control for one routed request: watermark-based
// drain mode plus a hard bound at the mailbox capacity. It returns a shed
// cause (< 0 when admitted). Runs on the connection goroutine; depth reads
// are racy by nature, so the watermark transitions are heuristics — the
// channel capacity is the invariant.
func (s *Server) admit(w *shardWorker, req shardReq) int {
	depth := len(w.reqs)
	if w.drainMode.Load() {
		if depth > s.lowWater {
			return shedDrain
		}
		w.drainMode.Store(false)
		s.m.drainMode[w.id].Set(0)
	} else if depth >= s.highWater {
		w.drainMode.Store(true)
		s.m.drainMode[w.id].Set(1)
		return shedWatermark
	}
	select {
	case w.reqs <- req:
		s.m.queueDepth[w.id].Set(float64(len(w.reqs)))
		return -1
	default:
		return shedQueueFull
	}
}

// handle executes one request against the shard's controller. Runs on the
// owner goroutine under the epoch read-lock.
func (w *shardWorker) handle(s *Server, req shardReq) shardResp {
	w.served++
	switch req.op {
	case OpPut:
		slot, ok := w.slots[req.key]
		if !ok {
			if w.next >= w.cap {
				w.full++
				return shardResp{status: StatusError, val: []byte("shard full"), cause: "shard_full"}
			}
			slot = w.next
			w.next++
			w.slots[req.key] = slot
		}
		var line [config.LineSize]byte
		binary.BigEndian.PutUint16(line[:2], uint16(len(req.val)))
		copy(line[2:], req.val)
		if s.dir.HeldElsewhere(hashes.CRC32(line[:])&s.fingerMask, w.id) {
			w.crossDup++
		}
		w.now = w.ctrl.Write(w.now, slot, line[:])
		w.puts++
		return shardResp{status: StatusOK}
	case OpGet:
		slot, ok := w.slots[req.key]
		if !ok {
			w.misses++
			return shardResp{status: StatusNotFound}
		}
		w.now = w.ctrl.ReadInto(w.now, slot, w.readBuf[:])
		w.gets++
		n := int(binary.BigEndian.Uint16(w.readBuf[:2]))
		if n > ValueCap {
			return shardResp{status: StatusError, val: []byte("corrupt length prefix"), cause: "corrupt_value"}
		}
		return shardResp{status: StatusOK, val: append([]byte(nil), w.readBuf[2:2+n]...)}
	default:
		return shardResp{status: StatusError, val: []byte("unknown op"), cause: "unknown_op"}
	}
}

// Advance runs one epoch barrier: waits for every in-flight request to
// finish, folds the directory's pending deltas into the next frozen
// generation, and republishes the per-shard gauges. Owners resume as soon
// as the lock drops. The first Advance publishes generation zero and flips
// the readiness probe.
func (s *Server) Advance() {
	t0 := time.Now()
	s.epochMu.Lock()
	s.dir.Advance()
	for _, w := range s.shards {
		w.served = 0
		s.publishShard(w)
	}
	for i, n := range s.dir.EpochPublishes() {
		s.reg.SetLabeled("serve_directory_publishes",
			[]monitor.Label{{Key: "shard", Value: strconv.Itoa(i)}}, float64(n))
	}
	st := s.dir.Snapshot()
	s.reg.Set("serve_directory_fingerprints", float64(st.Fingerprints))
	s.reg.Set("serve_directory_locations", float64(st.Locations))
	s.reg.Set("serve_directory_shared", float64(st.Shared))
	s.reg.Set("serve_directory_advances", float64(st.Advances))
	if s.cfg.SnapshotDir != "" {
		s.sinceSnap++
		if s.sinceSnap >= s.cfg.SnapshotEvery {
			s.sinceSnap = 0
			// Owners are parked at the barrier, so every shard's state is
			// stable — the same invariant publishShard relies on.
			//dewrite:allow lockdiscipline full-state snapshots serialize at the barrier by design; ROADMAP item 1 tracks delta snapshots that would move this off the write lock
			s.snapshotLocked(s.plan)
		}
	}
	s.epochMu.Unlock()

	held := time.Since(t0)
	s.m.advances.Inc()
	s.m.advanceNs.Add(uint64(held.Nanoseconds()))
	if s.ready.CompareAndSwap(false, true) {
		s.reg.Set("serve_ready", 1)
	}
	s.logEvent(slog.LevelInfo, "epoch_advance",
		"generation", st.Advances,
		"fingerprints", st.Fingerprints,
		"held_ns", held.Nanoseconds())
}

// publishShard refreshes one shard's gauges. Caller holds the epoch
// write-lock (the owner is parked, so its state is stable).
func (s *Server) publishShard(w *shardWorker) {
	labels := []monitor.Label{{Key: "shard", Value: strconv.Itoa(w.id)}}
	s.reg.SetLabeled("serve_puts", labels, float64(w.puts))
	s.reg.SetLabeled("serve_gets", labels, float64(w.gets))
	s.reg.SetLabeled("serve_misses", labels, float64(w.misses))
	s.reg.SetLabeled("serve_cross_shard_dup_hits", labels, float64(w.crossDup))
	s.reg.SetLabeled("serve_keys", labels, float64(len(w.slots)))
	s.reg.SetLabeled("serve_occupancy", labels, float64(w.next)/float64(w.cap))

	var e timeline.Epoch
	w.ctrl.SampleEpoch(&e, w.now)
	s.reg.PublishEpoch("serve_shard_"+strconv.Itoa(w.id), &e)
}

// Registry exposes the metric registry (for the ops HTTP server and tests).
func (s *Server) Registry() *monitor.Registry { return s.reg }

// Serve recovers persisted state (when snapshots are configured), publishes
// generation zero (flipping /readyz to ready), and accepts client
// connections on addr until Close. It returns once the listener is bound;
// accepting runs in the background.
//
// Ordering matters for the readiness contract: recovery and its scrub run
// to completion before the first Advance, so /readyz keeps answering 503
// until the restored state has been verified.
func (s *Server) Serve(addr string) error {
	if err := s.Recover(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	// Publish generation zero so the ops surface is populated from the first
	// scrape; until here /readyz answers 503.
	s.Advance()
	s.conns.Add(1)
	go func() {
		defer s.conns.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.quit:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
			s.conns.Add(1)
			go func() {
				defer s.conns.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// track registers a live client connection so shutdown can interrupt its
// blocked read; it reports false when the server is already closing.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.quit:
		return false
	default:
	}
	s.open[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.open, conn)
	s.connMu.Unlock()
}

// closedForShutdown reports whether a read error is the expected result of
// connection teardown rather than a client protocol violation.
func closedForShutdown(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

// serveConn handles one client stream: a sequence of framed requests, each
// answered in order. Requests route to shard owners by key hash; the
// connection goroutine blocks on the owner's reply, so each stream sees its
// own operations in program order.
//
// Shutdown contract: once a request frame has been read it is always
// processed and its response always written — quit is only honored between
// frames, so in-flight requests are never dropped. Counters count flushed
// responses, which is what makes the shutdown test's books balance.
func (s *Server) serveConn(conn net.Conn) {
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer s.untrack(conn)
	defer conn.Close()
	cid := s.connID.Add(1)
	s.m.connsTotal.Inc()
	s.reg.Add("serve_connections_open", 1)
	defer s.reg.Add("serve_connections_open", -1)
	s.logEvent(slog.LevelInfo, "conn_open", "conn", cid, "remote", conn.RemoteAddr().String())
	var served uint64
	defer func() {
		s.logEvent(slog.LevelInfo, "conn_close", "conn", cid, "served", served)
	}()

	// Chaos: a doomed connection is torn down after a planned number of
	// fully-flushed frames. The reset always lands between frames — every
	// counted response has reached the kernel send buffer and the graceful
	// close delivers it (FIN, not RST) — so injected resets never break the
	// books-balance invariant, they only exercise client reconnect paths.
	resetAfter, doomed := s.plan.ConnReset(cid)
	slowNs := s.plan.ReadDelayNs(cid)

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	reply := make(chan shardResp, 1)
	for {
		if ns := slowNs; ns > 0 {
			// Slow-loris pacing: the injected delay sits where a slow client
			// network would, between a flushed response and the next frame.
			s.m.chaosSlowReads.Inc()
			time.Sleep(time.Duration(ns))
		}
		op, key, val, deadlineMs, err := readRequest(br)
		if err != nil {
			if !closedForShutdown(err) {
				s.errorCause(op, "bad_frame")
				s.logEvent(slog.LevelWarn, "bad_frame", "conn", cid, "err", err.Error())
				_ = writeResponse(bw, StatusError, []byte(err.Error()))
				_ = bw.Flush()
			}
			return
		}
		rid := s.reqID.Add(1)
		start := time.Now()
		var deadline time.Time
		if deadlineMs > 0 {
			deadline = start.Add(time.Duration(deadlineMs) * time.Millisecond)
		} else if s.cfg.DefaultDeadline > 0 {
			deadline = start.Add(s.cfg.DefaultDeadline)
		}
		shardID := -1
		var resp shardResp
		shed := -1
		switch op {
		case OpStats:
			snap, err := json.Marshal(s.reg.Snapshot())
			if err != nil {
				resp = shardResp{status: StatusError, val: []byte(err.Error()), cause: "encode"}
			} else {
				resp = shardResp{status: StatusOK, val: snap}
			}
		case OpPut, OpGet:
			shardID = s.shardOf(key)
			w := s.shards[shardID]
			if shed = s.admit(w, shardReq{op: op, key: key, val: val, reply: reply, deadline: deadline}); shed >= 0 {
				resp = shardResp{status: StatusBusy}
			} else {
				resp = <-reply
			}
		default:
			resp = shardResp{status: StatusError, val: []byte("unknown op"), cause: "unknown_op"}
		}
		if err := writeResponse(bw, resp.status, resp.val); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		served++
		lat := time.Since(start)
		if resp.status == StatusDeadline {
			shed = shedDeadline
		}
		if shed >= 0 && shardID >= 0 {
			s.m.sheds[shardID][shed].Inc()
		} else {
			s.observe(rid, op, shardID, lat, resp)
		}

		if doomed && served >= resetAfter {
			s.m.chaosResets.Inc()
			s.logEvent(slog.LevelDebug, "chaos_conn_reset", "conn", cid, "served", served)
			return
		}
		// Between frames is the only place quit is honored: the response
		// above is flushed, so closing here drops nothing.
		select {
		case <-s.quit:
			return
		default:
		}
	}
}

// observe records one flushed response in the RED instruments, the slow
// ring, and (when slow) the structured log.
func (s *Server) observe(rid uint64, op byte, shardID int, lat time.Duration, resp shardResp) {
	idx := int(op) - 1
	if idx < 0 || idx >= len(s.m.latency) {
		// Unknown op: the error response was still flushed to the client, so
		// the books must count it — serve_requests_total{op="unknown"} — but
		// an op the protocol doesn't know has no latency family.
		s.m.requests[len(s.m.requests)-1].Inc()
	} else {
		s.m.requests[idx].Inc()
		s.m.latency[idx].Observe(uint64(lat.Nanoseconds()))
	}
	if resp.status == StatusError && resp.cause != "" {
		s.errorCause(op, resp.cause)
	}
	if s.slow.record(slowEntry{ID: rid, Op: opName(op), Shard: shardID, LatencyNs: lat.Nanoseconds()}) {
		s.m.slowTotal.Inc()
		s.logEvent(slog.LevelDebug, "slow_request",
			"req", rid, "op", opName(op), "shard", shardID, "latency_ns", lat.Nanoseconds())
	}
}

// Close stops accepting, lets every in-flight request finish and flush its
// response, tears the client connections down, stops the owners, and runs
// one final advance so the gauges reflect the end state. The listener is
// closed exactly once; extra Close calls (including concurrent ones) wait on
// nothing and change nothing.
func (s *Server) Close() {
	s.closing.Do(func() {
		// Flip the readiness probe to 503 before anything is torn down, so
		// load balancers stop routing here while the drain is in progress.
		s.draining.Store(true)
		s.reg.Set("serve_draining", 1)
		s.logEvent(slog.LevelInfo, "shutdown_begin", "conns_open", func() int {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			return len(s.open)
		}())
		close(s.quit)
		if s.ln != nil {
			s.ln.Close()
		}
		// Interrupt reads blocked waiting for a next frame: connection
		// goroutines check quit after each flushed response, and an expired
		// read deadline unblocks the ones sitting idle in readRequest. A
		// frame already read is still fully served (see serveConn).
		s.connMu.Lock()
		for conn := range s.open {
			_ = conn.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.conns.Wait()
		for _, w := range s.shards {
			close(w.reqs)
		}
		s.owners.Wait()
		s.Advance()
		if s.cfg.SnapshotDir != "" {
			// The clean-shutdown snapshot is never chaos-aborted: it is the
			// reference state the chaos soak compares a crash recovery
			// against.
			s.epochMu.Lock()
			//dewrite:allow lockdiscipline the clean-shutdown snapshot runs at the barrier by design: owners have drained and no reader is stalled
			s.snapshotLocked(nil)
			s.epochMu.Unlock()
		}
		s.logEvent(slog.LevelInfo, "shutdown_complete", "requests", s.reqID.Load())
	})
}

// Abort is kill -9 in-process: it tears the listener and every connection
// down without draining, without a final advance, and without a clean
// snapshot — whatever generation directories exist on disk are exactly what
// a power loss would have left. Tests use it to exercise the recovery path;
// production binaries only ever Close.
func (s *Server) Abort() {
	s.closing.Do(func() {
		close(s.quit)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connMu.Lock()
		for conn := range s.open {
			_ = conn.Close()
		}
		s.connMu.Unlock()
		s.conns.Wait()
		for _, w := range s.shards {
			close(w.reqs)
		}
		s.owners.Wait()
	})
}

package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"

	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/hashes"
	"dewrite/internal/monitor"
	"dewrite/internal/shard"
	"dewrite/internal/timeline"
	"dewrite/internal/units"
)

// Server is the long-running sharded secure-NVM key-value service: the
// line address space is partitioned across shards, each owned by a single
// goroutine that drives its own DeWrite controller (dedup tables, metadata
// caches, bank queues, wear state) in simulated time, with the cross-shard
// fingerprint directory shared between them.
//
// Concurrency follows the simulator's shard contract: controllers are
// single-threaded, so all access to one shard's state happens on its owner
// goroutine; the directory's pending side is safe for concurrent publishes,
// and its frozen side is only advanced under the epoch write-lock, which
// every owner holds read-side while serving a request. Advancing is
// therefore a brief stop-the-world barrier, exactly the simulator's epoch
// boundary transplanted to wall-clock time.
type Server struct {
	cfg    Config
	router shard.Router
	dir    *shard.Directory
	shards []*shardWorker
	reg    *monitor.Registry

	// epochMu is the epoch barrier: owners serve requests under RLock;
	// the directory advance runs under Lock.
	epochMu sync.RWMutex
	// opsSinceAdvance counts requests served since the last advance
	// (maintained by owners under RLock with the shard's own counter, folded
	// during advance).
	fingerMask uint32

	ln      net.Listener
	quit    chan struct{}
	conns   sync.WaitGroup
	owners  sync.WaitGroup
	closing sync.Once
}

// Config sizes the server.
type Config struct {
	// Shards is the number of controller shards (owner goroutines).
	Shards int
	// Lines is the global number of data lines, striped across shards.
	Lines uint64
	// AdvanceEvery advances the cross-shard directory after this many
	// served requests (approximately); <= 0 defaults to 1024.
	AdvanceEvery uint64
	// NVM overrides the simulator config; zero value uses config.Default().
	NVM config.Config
}

// shardReq is one routed request handed to a shard owner.
type shardReq struct {
	op    byte
	key   string
	val   []byte
	reply chan shardResp
}

type shardResp struct {
	status byte
	val    []byte
}

// shardWorker owns one shard: its controller, its key→line directory, and
// its simulated clock. Everything here is touched only by the owner
// goroutine.
type shardWorker struct {
	id   int
	ctrl *core.Controller
	reqs chan shardReq

	slots map[string]uint64
	next  uint64
	cap   uint64
	now   units.Time

	puts, gets, misses, full uint64
	crossDup                 uint64
	served                   uint64 // since last advance
	readBuf                  [config.LineSize]byte
}

// NewServer builds the sharded service and starts its owner goroutines; call
// Serve to accept connections and Close to tear everything down.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dewrite-serve: %d shards", cfg.Shards)
	}
	if cfg.Lines == 0 {
		cfg.Lines = 1 << 16
	}
	if cfg.AdvanceEvery == 0 {
		cfg.AdvanceEvery = 1024
	}
	nvmCfg := cfg.NVM
	if nvmCfg.NVM.Banks() == 0 {
		nvmCfg = config.Default()
	}

	s := &Server{
		cfg:    cfg,
		router: shard.NewRouter(cfg.Shards),
		dir:    shard.NewDirectory(cfg.Shards),
		reg:    monitor.NewRegistry(),
		quit:   make(chan struct{}),
	}
	s.fingerMask = ^uint32(0)
	if bits := nvmCfg.Dedup.HashSizeBits; bits > 0 && bits < 32 {
		s.fingerMask = uint32(1)<<bits - 1
	}

	// Each shard owns an equal slice of the device's banks on one rank.
	shardCfg := nvmCfg
	shardCfg.NVM.Ranks = 1
	shardCfg.NVM.BanksPerRank = nvmCfg.NVM.Banks() / cfg.Shards
	if shardCfg.NVM.BanksPerRank < 1 {
		shardCfg.NVM.BanksPerRank = 1
	}

	for i := 0; i < cfg.Shards; i++ {
		w := &shardWorker{
			id:    i,
			reqs:  make(chan shardReq, 64),
			slots: make(map[string]uint64),
			cap:   s.router.LinesFor(i, cfg.Lines),
		}
		w.ctrl = core.New(core.Options{DataLines: w.cap, Config: shardCfg})
		d, id := s.dir, i
		w.ctrl.Tables().SetPublish(func(h uint32, delta int) { d.Publish(id, h, delta) })
		s.shards = append(s.shards, w)
		s.owners.Add(1)
		go s.runOwner(w)
	}
	// Publish generation zero so the ops surface is populated from the first
	// scrape, not from the first epoch barrier.
	s.Advance()
	return s, nil
}

// shardOf routes a key: shards own key-hash classes, the serving analog of
// the simulator's address striping.
func (s *Server) shardOf(key string) int {
	return int(hashes.CRC32([]byte(key)) % uint32(len(s.shards)))
}

// runOwner is a shard's single-threaded service loop.
func (s *Server) runOwner(w *shardWorker) {
	defer s.owners.Done()
	for req := range w.reqs {
		s.epochMu.RLock()
		resp := w.handle(s, req)
		advance := w.served >= s.cfg.AdvanceEvery
		s.epochMu.RUnlock()
		req.reply <- resp
		if advance {
			s.Advance()
		}
	}
}

// handle executes one request against the shard's controller. Runs on the
// owner goroutine under the epoch read-lock.
func (w *shardWorker) handle(s *Server, req shardReq) shardResp {
	w.served++
	switch req.op {
	case OpPut:
		slot, ok := w.slots[req.key]
		if !ok {
			if w.next >= w.cap {
				w.full++
				return shardResp{status: StatusError, val: []byte("shard full")}
			}
			slot = w.next
			w.next++
			w.slots[req.key] = slot
		}
		var line [config.LineSize]byte
		binary.BigEndian.PutUint16(line[:2], uint16(len(req.val)))
		copy(line[2:], req.val)
		if s.dir.HeldElsewhere(hashes.CRC32(line[:])&s.fingerMask, w.id) {
			w.crossDup++
		}
		w.now = w.ctrl.Write(w.now, slot, line[:])
		w.puts++
		return shardResp{status: StatusOK}
	case OpGet:
		slot, ok := w.slots[req.key]
		if !ok {
			w.misses++
			return shardResp{status: StatusNotFound}
		}
		w.now = w.ctrl.ReadInto(w.now, slot, w.readBuf[:])
		w.gets++
		n := int(binary.BigEndian.Uint16(w.readBuf[:2]))
		if n > ValueCap {
			return shardResp{status: StatusError, val: []byte("corrupt length prefix")}
		}
		return shardResp{status: StatusOK, val: append([]byte(nil), w.readBuf[2:2+n]...)}
	default:
		return shardResp{status: StatusError, val: []byte("unknown op")}
	}
}

// Advance runs one epoch barrier: waits for every in-flight request to
// finish, folds the directory's pending deltas into the next frozen
// generation, and republishes the per-shard gauges. Owners resume as soon
// as the lock drops.
func (s *Server) Advance() {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.dir.Advance()
	for _, w := range s.shards {
		w.served = 0
		s.publishShard(w)
	}
	st := s.dir.Snapshot()
	s.reg.Set("serve_directory_fingerprints", float64(st.Fingerprints))
	s.reg.Set("serve_directory_locations", float64(st.Locations))
	s.reg.Set("serve_directory_shared", float64(st.Shared))
	s.reg.Set("serve_directory_advances", float64(st.Advances))
}

// publishShard refreshes one shard's gauges. Caller holds the epoch
// write-lock (the owner is parked, so its state is stable).
func (s *Server) publishShard(w *shardWorker) {
	labels := []monitor.Label{{Key: "shard", Value: strconv.Itoa(w.id)}}
	s.reg.SetLabeled("serve_puts", labels, float64(w.puts))
	s.reg.SetLabeled("serve_gets", labels, float64(w.gets))
	s.reg.SetLabeled("serve_misses", labels, float64(w.misses))
	s.reg.SetLabeled("serve_cross_shard_dup_hits", labels, float64(w.crossDup))
	s.reg.SetLabeled("serve_keys", labels, float64(len(w.slots)))

	var e timeline.Epoch
	w.ctrl.SampleEpoch(&e, w.now)
	s.reg.PublishEpoch("serve_shard_"+strconv.Itoa(w.id), &e)
}

// Registry exposes the metric registry (for the ops HTTP server and tests).
func (s *Server) Registry() *monitor.Registry { return s.reg }

// Serve accepts client connections on addr until Close. It returns once the
// listener is bound; accepting runs in the background.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.conns.Add(1)
	go func() {
		defer s.conns.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.quit:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
			s.conns.Add(1)
			go func() {
				defer s.conns.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// serveConn handles one client stream: a sequence of framed requests, each
// answered in order. Requests route to shard owners by key hash; the
// connection goroutine blocks on the owner's reply, so each stream sees its
// own operations in program order.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	reply := make(chan shardResp, 1)
	for {
		op, key, val, err := readRequest(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				_ = writeResponse(bw, StatusError, []byte(err.Error()))
				_ = bw.Flush()
			}
			return
		}
		var resp shardResp
		switch op {
		case OpStats:
			snap, err := json.Marshal(s.reg.Snapshot())
			if err != nil {
				resp = shardResp{status: StatusError, val: []byte(err.Error())}
			} else {
				resp = shardResp{status: StatusOK, val: snap}
			}
		case OpPut, OpGet:
			w := s.shards[s.shardOf(key)]
			select {
			case w.reqs <- shardReq{op: op, key: key, val: val, reply: reply}:
				resp = <-reply
			case <-s.quit:
				return
			}
		default:
			resp = shardResp{status: StatusError, val: []byte("unknown op")}
		}
		if err := writeResponse(bw, resp.status, resp.val); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting, waits for in-flight connections, stops the owners,
// and runs one final advance so the gauges reflect the end state.
func (s *Server) Close() {
	s.closing.Do(func() {
		close(s.quit)
		if s.ln != nil {
			s.ln.Close()
		}
		s.conns.Wait()
		for _, w := range s.shards {
			close(w.reqs)
		}
		s.owners.Wait()
		s.Advance()
	})
}

// Command dewrite-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	dewrite-bench                 # run every experiment at full scale
//	dewrite-bench -run fig14      # one experiment
//	dewrite-bench -run fig14,fig16,fig17
//	dewrite-bench -list           # list experiment IDs
//	dewrite-bench -quick          # representative app subset, shorter runs
//	dewrite-bench -requests 50000 # scale the per-app run length
//	dewrite-bench -parallel 8     # worker count (default GOMAXPROCS)
//	dewrite-bench -quick -speedup # also time a sequential pass and report speedup,
//	                              # plus the sharded hot-loop scaling curve
//	dewrite-bench -quick -shards 4 # smoke-test the sharded engine first
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dewrite/internal/experiments"
	"dewrite/internal/monitor"
	"dewrite/internal/stats"
	"dewrite/internal/telemetry"
)

// benchFileSchema identifies the BENCH_<date>.json layout. v2 added the
// perf.scaling curve (sharded hot-loop wall clock at worker counts 1/2/4/8);
// v1 documents are a strict subset and remain decodable by benchdiff.
const benchFileSchema = "dewrite/bench/v2"

// benchEntry is one experiment's record in the bench file: identity, host
// wall-clock cost, and every result table it produced.
type benchEntry struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	WallMS float64        `json:"wall_ms"`
	Tables []*stats.Table `json:"tables"`
}

// benchPerf records the engine-level cost of the invocation: worker count,
// wall clock, allocation pressure, and (under -speedup) the sequential
// baseline, the resulting suite speedup, and the sharded hot-loop scaling
// curve.
type benchPerf struct {
	Workers          int                 `json:"workers"`
	WallMS           float64             `json:"wall_ms"`
	Mallocs          uint64              `json:"mallocs"`
	AllocsPerRequest float64             `json:"allocs_per_request"`
	SeqWallMS        float64             `json:"seq_wall_ms,omitempty"`
	Speedup          float64             `json:"speedup,omitempty"`
	Scaling          []benchScalingPoint `json:"scaling,omitempty"`
}

// benchScalingPoint is one point of the sharded-engine scaling curve: the
// same prepared request stream driven through a fixed shard count at this
// worker count, with speedup relative to the curve's one-worker point. The
// results are worker-count-independent by construction, so the curve
// isolates pure hot-loop parallelism from any output drift.
type benchScalingPoint struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

// benchFile is the machine-readable record of one dewrite-bench invocation.
type benchFile struct {
	Schema      string       `json:"schema"`
	Date        string       `json:"date"`
	Quick       bool         `json:"quick"`
	Requests    int          `json:"requests"`
	Warmup      int          `json:"warmup"`
	Seed        uint64       `json:"seed"`
	Perf        benchPerf    `json:"perf"`
	Experiments []benchEntry `json:"experiments"`
}

// benchOutPath resolves the -bench-out flag: "auto" names the file after the
// current date, "none" (or empty) disables it.
func benchOutPath(flagVal string, now time.Time) string {
	switch flagVal {
	case "none", "":
		return ""
	case "auto":
		return fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	default:
		return flagVal
	}
}

// selectExperiments resolves a comma-separated ID list ("" = all).
func selectExperiments(run string) ([]experiments.Experiment, error) {
	if run == "" {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		selected = append(selected, e)
	}
	return selected, nil
}

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "representative subset at reduced scale")
		requests = flag.Int("requests", 0, "memory requests per (app, scheme) run")
		warmup   = flag.Int("warmup", -1, "warmup requests excluded from measurement")
		seed     = flag.Uint64("seed", 42, "workload seed")
		format   = flag.String("format", "text", "output format: text|csv|json")
		jsonOut  = flag.Bool("json", false, "shorthand for -format json")
		plotDir  = flag.String("plot", "", "also write gnuplot .dat files into this directory")
		benchOut = flag.String("bench-out", "auto", "write timings and tables to this JSON file ('auto' = BENCH_<date>.json, 'none' disables)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address")
		parallel = flag.Int("parallel", 0, "worker goroutines (<1 = GOMAXPROCS); output is identical at any count")
		speedup  = flag.Bool("speedup", false, "also run a sequential pass and the sharded scaling curve, recording both")
		shards   = flag.Int("shards", 0, "validate the sharded engine at this shard count before the experiments (0 disables)")
		monAddr  = flag.String("monitor", "", "serve live gauges (/metrics, /healthz, /debug/vars) on this address (e.g. :8080)")
	)
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *requests > 0 {
		opts.Requests = *requests
	}
	if *warmup >= 0 {
		opts.Warmup = *warmup
	}
	opts.Seed = *seed
	if opts.Warmup >= opts.Requests {
		fmt.Fprintf(os.Stderr, "dewrite-bench: warmup %d must be below requests %d\n", opts.Warmup, opts.Requests)
		os.Exit(2)
	}

	selected, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dewrite-bench: %v (use -list)\n", err)
		os.Exit(2)
	}

	if *pprof != "" {
		addr, err := telemetry.ServeDebug(*pprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-bench: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dewrite-bench: pprof at http://%s/debug/pprof/\n", addr)
	}

	if *monAddr != "" {
		reg := monitor.NewRegistry()
		msrv, err := monitor.Serve(*monAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-bench: monitor: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		prev := experiments.SetProgress(reg.Progress())
		defer experiments.SetProgress(prev)
		fmt.Fprintf(os.Stderr, "dewrite-bench: monitor at http://%s/metrics\n", msrv.Addr())
	}

	workers := experiments.Workers(*parallel)
	bench := benchFile{
		Schema:   benchFileSchema,
		Date:     time.Now().Format("2006-01-02"),
		Quick:    *quick,
		Requests: opts.Requests,
		Warmup:   opts.Warmup,
		Seed:     opts.Seed,
	}
	if *format == "text" {
		fmt.Printf("dewrite-bench: %d experiment(s), %d requests/app (%d warmup), seed %d, %d worker(s)\n\n",
			len(selected), opts.Requests, opts.Warmup, opts.Seed, workers)
	}
	if *plotDir != "" {
		if err := os.MkdirAll(*plotDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *shards > 0 {
		if err := runShardSmoke(opts, *shards, workers); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
			os.Exit(1)
		}
	}

	var seqWall time.Duration
	var curve []benchScalingPoint
	if *speedup {
		// A throwaway suite: same options, fresh memo state, one worker.
		seqStart := time.Now()
		experiments.RunAll(experiments.NewSuite(opts), selected, 1)
		seqWall = time.Since(seqStart)
		fmt.Fprintf(os.Stderr, "dewrite-bench: sequential pass %v\n", seqWall.Round(time.Millisecond))
		curve = scalingCurve(opts)
	}

	suite := experiments.NewSuite(opts)
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	if workers > 1 && *run == "" {
		// Warm the shared (application × scheme) grid with fine-grained jobs
		// before the coarser per-experiment fan-out. Skipped for -run subsets,
		// which may not need the whole grid.
		suite.Prefill(workers)
	}
	outcomes := experiments.RunAll(suite, selected, workers)
	wall := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	mallocs := msAfter.Mallocs - msBefore.Mallocs
	simulated := uint64(suite.Simulations()) * uint64(opts.Requests)
	bench.Perf = benchPerf{
		Workers: workers,
		WallMS:  float64(wall) / float64(time.Millisecond),
		Mallocs: mallocs,
	}
	if simulated > 0 {
		bench.Perf.AllocsPerRequest = float64(mallocs) / float64(simulated)
	}
	if *speedup {
		bench.Perf.SeqWallMS = float64(seqWall) / float64(time.Millisecond)
		if wall > 0 {
			bench.Perf.Speedup = float64(seqWall) / float64(wall)
		}
		bench.Perf.Scaling = curve
		fmt.Fprintf(os.Stderr, "dewrite-bench: parallel pass %v with %d worker(s): %.2fx speedup, %.1f allocs/request\n",
			wall.Round(time.Millisecond), workers, bench.Perf.Speedup, bench.Perf.AllocsPerRequest)
	}

	for _, oc := range outcomes {
		e, tables := oc.Experiment, oc.Tables
		bench.Experiments = append(bench.Experiments, benchEntry{
			ID:     e.ID,
			Title:  e.Title,
			WallMS: float64(oc.Wall) / float64(time.Millisecond),
			Tables: tables,
		})
		for ti, tb := range tables {
			if *plotDir != "" {
				name := e.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s-%d", e.ID, ti)
				}
				path := filepath.Join(*plotDir, name+".dat")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
				if err := tb.WriteDAT(f); err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
				f.Close()
			}
			switch *format {
			case "text":
				fmt.Println(tb.String())
			case "csv":
				fmt.Printf("# %s\n", tb.Title)
				if err := tb.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
			case "json":
				if err := tb.WriteJSON(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
			default:
				fmt.Fprintf(os.Stderr, "dewrite-bench: unknown format %q\n", *format)
				os.Exit(2)
			}
		}
		if *format == "text" {
			fmt.Printf("[%s finished in %v]\n\n", e.ID, oc.Wall.Round(time.Millisecond))
		}
	}

	if path := benchOutPath(*benchOut, time.Now()); path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dewrite-bench: wrote %s\n", path)
	}
}

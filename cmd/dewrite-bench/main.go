// Command dewrite-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	dewrite-bench                 # run every experiment at full scale
//	dewrite-bench -run fig14      # one experiment
//	dewrite-bench -run fig14,fig16,fig17
//	dewrite-bench -list           # list experiment IDs
//	dewrite-bench -quick          # representative app subset, shorter runs
//	dewrite-bench -requests 50000 # scale the per-app run length
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dewrite/internal/experiments"
)

// selectExperiments resolves a comma-separated ID list ("" = all).
func selectExperiments(run string) ([]experiments.Experiment, error) {
	if run == "" {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		selected = append(selected, e)
	}
	return selected, nil
}

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "representative subset at reduced scale")
		requests = flag.Int("requests", 0, "memory requests per (app, scheme) run")
		warmup   = flag.Int("warmup", -1, "warmup requests excluded from measurement")
		seed     = flag.Uint64("seed", 42, "workload seed")
		format   = flag.String("format", "text", "output format: text|csv|json")
		plotDir  = flag.String("plot", "", "also write gnuplot .dat files into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *requests > 0 {
		opts.Requests = *requests
	}
	if *warmup >= 0 {
		opts.Warmup = *warmup
	}
	opts.Seed = *seed
	if opts.Warmup >= opts.Requests {
		fmt.Fprintf(os.Stderr, "dewrite-bench: warmup %d must be below requests %d\n", opts.Warmup, opts.Requests)
		os.Exit(2)
	}

	selected, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dewrite-bench: %v (use -list)\n", err)
		os.Exit(2)
	}

	suite := experiments.NewSuite(opts)
	fmt.Printf("dewrite-bench: %d experiment(s), %d requests/app (%d warmup), seed %d\n\n",
		len(selected), opts.Requests, opts.Warmup, opts.Seed)
	if *plotDir != "" {
		if err := os.MkdirAll(*plotDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(suite)
		for ti, tb := range tables {
			if *plotDir != "" {
				name := e.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s-%d", e.ID, ti)
				}
				path := filepath.Join(*plotDir, name+".dat")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
				if err := tb.WriteDAT(f); err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
				f.Close()
			}
			switch *format {
			case "text":
				fmt.Println(tb.String())
			case "csv":
				fmt.Printf("# %s\n", tb.Title)
				if err := tb.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
			case "json":
				if err := tb.WriteJSON(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "dewrite-bench: %v\n", err)
					os.Exit(1)
				}
			default:
				fmt.Fprintf(os.Stderr, "dewrite-bench: unknown format %q\n", *format)
				os.Exit(2)
			}
		}
		if *format == "text" {
			fmt.Printf("[%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dewrite/internal/config"
	"dewrite/internal/experiments"
	"dewrite/internal/sim"
	"dewrite/internal/workload"
)

// The sharded engine's bench-side harness: a correctness smoke (-shards) and
// the hot-loop scaling curve (-speedup). Both run one representative
// application through internal/sim's sharded execution mode, so the bench
// binary exercises the same partition/merge path the acceptance criteria
// pin in internal/sim's own tests.

// smokeApp is the profile both passes use: mcf is the paper's
// dedup-friendliest SPEC application, so cross-shard fingerprint traffic is
// guaranteed to be non-trivial.
const smokeApp = "mcf"

// curveShards fixes the scaling curve's partition width. Eight shards leave
// headroom for the full 1/2/4/8 worker ladder: with fewer shards than
// workers the extra workers would idle and the top of the curve would
// measure the flag, not the engine.
const curveShards = 8

// curveWorkers is the worker ladder the ISSUE pins: the perf block records
// the full curve, not a single high-water point.
var curveWorkers = []int{1, 2, 4, 8}

// smokeOptions bounds the smoke/curve run length: full-scale experiment
// options would make the four curve passes cost as much as the suite itself,
// and the sharded engine's behavior does not change past quick scale.
func smokeOptions(opts experiments.Options) sim.Options {
	req, warm := opts.Requests, opts.Warmup
	if req > 20000 {
		req = 20000
	}
	if warm >= req {
		warm = req / 10
	}
	return sim.Options{Requests: req, Warmup: warm, Seed: opts.Seed}
}

// runShardSmoke validates the sharded engine end to end at the requested
// shard count: shard count 1 must be byte-identical to the sequential
// controller, shard count N must be deterministic across repeated runs and
// worker counts, and the merged counters must match the sequential stream
// totals. Returns an error describing the first violated invariant.
func runShardSmoke(opts experiments.Options, shards, workers int) error {
	prof, ok := workload.ByName(smokeApp)
	if !ok {
		return fmt.Errorf("shard smoke: unknown profile %q", smokeApp)
	}
	simOpts := smokeOptions(opts)
	cfg := config.Default()
	simOpts.Prepared = sim.Prepare(prof, simOpts)

	encode := func(res sim.Result, mem sim.Memory) []byte {
		rep := sim.NewRunReport(res, mem)
		blob, err := json.Marshal(rep)
		if err != nil {
			panic(err)
		}
		return blob
	}

	seqRes, seqMem := sim.RunScheme(sim.SchemeDeWrite, prof, cfg, simOpts)
	seqBlob := encode(seqRes, seqMem)

	oneRes, oneMem := sim.RunShardedScheme(sim.SchemeDeWrite, prof, cfg,
		sim.ShardedOptions{Options: simOpts, Shards: 1})
	if !bytes.Equal(seqBlob, encode(oneRes, oneMem)) {
		return fmt.Errorf("shard smoke: shard count 1 diverged from the sequential controller")
	}

	shardedOpts := sim.ShardedOptions{Options: simOpts, Shards: shards, Workers: workers}
	res := sim.RunSharded(sim.SchemeDeWrite, prof, cfg, shardedOpts)
	blob := encode(res, nil)

	// Determinism: a repeat at a different worker count must be byte-identical.
	repeatOpts := shardedOpts
	repeatOpts.Workers = 1
	repeat := sim.RunSharded(sim.SchemeDeWrite, prof, cfg, repeatOpts)
	if !bytes.Equal(blob, encode(repeat, nil)) {
		return fmt.Errorf("shard smoke: %d-shard run not worker-count-independent", shards)
	}

	// Conservation: the partition must account for exactly the sequential
	// stream — no request lost to routing, none double-counted in a merge.
	if res.Requests != seqRes.Requests || res.MemWrites != seqRes.MemWrites ||
		res.MemReads != seqRes.MemReads {
		return fmt.Errorf("shard smoke: merged counts %d/%d/%d != sequential %d/%d/%d",
			res.Requests, res.MemWrites, res.MemReads,
			seqRes.Requests, seqRes.MemWrites, seqRes.MemReads)
	}
	if res.Sharding == nil || res.Sharding.Epochs == 0 {
		return fmt.Errorf("shard smoke: %d-shard run reported no sharding block", shards)
	}

	fmt.Fprintf(os.Stderr,
		"dewrite-bench: shard smoke ok (%d shards, %d epochs, %d cross-shard dup hits, %s x %d requests)\n",
		shards, res.Sharding.Epochs, res.Sharding.CrossShardDupHits, smokeApp, simOpts.Requests)
	return nil
}

// scalingCurve times the sharded hot loop at each worker count on one shared
// prepared stream and returns the perf-block curve. Speedups are relative to
// the curve's own one-worker point, so the curve is self-normalizing: it
// reports how well the partition converts workers into wall clock,
// independent of the host's absolute speed.
func scalingCurve(opts experiments.Options) []benchScalingPoint {
	prof, ok := workload.ByName(smokeApp)
	if !ok {
		return nil
	}
	simOpts := smokeOptions(opts)
	cfg := config.Default()
	simOpts.Prepared = sim.Prepare(prof, simOpts)

	curve := make([]benchScalingPoint, 0, len(curveWorkers))
	for _, w := range curveWorkers {
		start := time.Now()
		sim.RunSharded(sim.SchemeDeWrite, prof, cfg, sim.ShardedOptions{
			Options: simOpts,
			Shards:  curveShards,
			Workers: w,
		})
		wall := time.Since(start)
		pt := benchScalingPoint{Workers: w, WallMS: float64(wall) / float64(time.Millisecond)}
		if base := curve; len(base) > 0 && pt.WallMS > 0 {
			pt.Speedup = base[0].WallMS / pt.WallMS
		} else {
			pt.Speedup = 1
		}
		curve = append(curve, pt)
		fmt.Fprintf(os.Stderr, "dewrite-bench: scaling %d worker(s): %v (%.2fx)\n",
			w, wall.Round(time.Millisecond), pt.Speedup)
	}
	return curve
}

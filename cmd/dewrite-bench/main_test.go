package main

import "testing"

func TestSelectExperimentsAll(t *testing.T) {
	all, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 16 {
		t.Fatalf("selected %d experiments, want the full registry", len(all))
	}
}

func TestSelectExperimentsSubset(t *testing.T) {
	sel, err := selectExperiments("fig14, fig16 ,fig17")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	if sel[0].ID != "fig14" || sel[2].ID != "fig17" {
		t.Fatalf("wrong order: %v %v", sel[0].ID, sel[2].ID)
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	if _, err := selectExperiments("fig14,nonsense"); err == nil {
		t.Fatal("expected error")
	}
}

// Command benchdiff compares two benchmark snapshots (BENCH_<date>.json) or
// two run reports (dewrite-sim -json) and flags metric deltas beyond
// configurable thresholds, exiting non-zero so CI can gate on regressions.
//
// Usage:
//
//	benchdiff BENCH_2026-08-05.json BENCH_2026-09-01.json
//	benchdiff -threshold 0.05 old-run.json new-run.json
//	benchdiff -warn-only -github baseline.json current.json   # CI annotation
//
// The file kind is sniffed from the schema field; both files must be the
// same kind. Deterministic metrics (latencies, IPC, energy, allocations,
// table cells) use -threshold; host wall-clock metrics use the looser
// -time-threshold, since CI machines are noisy.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var opts diffOptions
	flag.Float64Var(&opts.Threshold, "threshold", 0.05,
		"relative delta flagged on deterministic metrics (0.05 = 5%)")
	flag.Float64Var(&opts.TimeThreshold, "time-threshold", 0.50,
		"relative delta flagged on host wall-clock metrics")
	flag.BoolVar(&opts.IncludeHost, "include-host", false,
		"also compare host-dependent table columns (marked 'this host')")
	warnOnly := flag.Bool("warn-only", false, "report regressions but exit 0")
	github := flag.Bool("github", false, "emit GitHub Actions workflow annotations")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] <baseline.json> <current.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)

	oldBlob, err := os.ReadFile(oldPath)
	if err != nil {
		fatal(err)
	}
	newBlob, err := os.ReadFile(newPath)
	if err != nil {
		fatal(err)
	}
	findings, compared, err := diff(oldBlob, newBlob, opts)
	if err != nil {
		fatal(err)
	}

	regressions := 0
	for _, f := range findings {
		if f.Regression {
			regressions++
		}
		line := f.String()
		switch {
		case *github && f.Regression && !*warnOnly:
			fmt.Printf("::error title=benchdiff::%s\n", line)
		case *github && f.Regression:
			fmt.Printf("::warning title=benchdiff::%s\n", line)
		default:
			fmt.Println(line)
		}
	}
	if regressions == 0 {
		fmt.Printf("benchdiff: %s vs %s: no regressions (%d metrics compared)\n",
			oldPath, newPath, compared)
		return
	}
	fmt.Printf("benchdiff: %d regression(s) beyond thresholds (%d metrics compared)\n",
		regressions, compared)
	if !*warnOnly {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"dewrite/internal/sim"
)

// diffOptions configures the comparison.
type diffOptions struct {
	Threshold     float64 // deterministic metrics
	TimeThreshold float64 // host wall-clock metrics
	IncludeHost   bool    // compare host-dependent table columns
}

// finding is one metric whose delta crossed its threshold.
type finding struct {
	Metric     string
	Old, New   float64
	Delta      float64 // relative: (new-old)/old
	Regression bool    // true when the delta is in the metric's bad direction
	Note       string  // non-numeric mismatches carry the detail here
}

func (f finding) String() string {
	if f.Note != "" {
		return fmt.Sprintf("%s: %s", f.Metric, f.Note)
	}
	arrow := "worsened"
	if !f.Regression {
		arrow = "changed"
	}
	return fmt.Sprintf("%s %s %+.1f%% (%.6g -> %.6g)", f.Metric, arrow, f.Delta*100, f.Old, f.New)
}

// schemaOf sniffs the schema field without committing to a layout.
func schemaOf(blob []byte) (string, error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(blob, &head); err != nil {
		return "", err
	}
	if head.Schema == "" {
		return "", fmt.Errorf("no schema field")
	}
	return head.Schema, nil
}

// benchSchemaPrefix matches every dewrite/bench schema revision (v1, v2).
// Bench documents only ever grow fields — v2 added perf.scaling — so any
// revision pair compares, with missing optional blocks noted, not diffed.
const benchSchemaPrefix = "dewrite/bench/"

// diff compares two documents of the same kind. It returns the findings and
// the number of metrics examined.
func diff(oldBlob, newBlob []byte, opts diffOptions) ([]finding, int, error) {
	oldSchema, err := schemaOf(oldBlob)
	if err != nil {
		return nil, 0, fmt.Errorf("baseline: %w", err)
	}
	newSchema, err := schemaOf(newBlob)
	if err != nil {
		return nil, 0, fmt.Errorf("current: %w", err)
	}
	oldBench := strings.HasPrefix(oldSchema, benchSchemaPrefix)
	newBench := strings.HasPrefix(newSchema, benchSchemaPrefix)
	if oldBench != newBench {
		return nil, 0, fmt.Errorf("mixed kinds: %q vs %q", oldSchema, newSchema)
	}
	d := &differ{opts: opts}
	if oldBench {
		err = d.bench(oldBlob, newBlob)
	} else {
		err = d.run(oldBlob, newBlob)
	}
	if err != nil {
		return nil, 0, err
	}
	return d.found, d.compared, nil
}

type differ struct {
	opts     diffOptions
	compared int // metrics examined, for the summary line
	found    []finding
}

// compare records one numeric metric. dir is the bad direction: +1 when
// higher is worse (latency, energy, allocations), -1 when lower is worse
// (IPC, speedup), 0 when any move beyond the threshold is suspect
// (deterministic table cells).
func (d *differ) compare(metric string, oldV, newV, threshold float64, dir int) {
	d.compared++
	if oldV == newV {
		return
	}
	var delta float64
	if oldV != 0 {
		delta = (newV - oldV) / oldV
	} else {
		delta = 1 // appeared from zero: always beyond any sane threshold
	}
	abs := delta
	if abs < 0 {
		abs = -abs
	}
	if abs <= threshold {
		return
	}
	regression := dir == 0 || (dir > 0 && delta > 0) || (dir < 0 && delta < 0)
	d.found = append(d.found, finding{Metric: metric, Old: oldV, New: newV, Delta: delta, Regression: regression})
}

// ---- run-report mode ----

// section decides whether an optional report block (timeline, faults,
// attribution) can be diffed: both sides present → yes; one side missing (an
// older-schema or differently-collected report) → a non-regression note, never
// a diff against zeros; both missing → nothing to say.
func (d *differ) section(name string, oldHas, newHas bool) bool {
	switch {
	case oldHas && newHas:
		return true
	case oldHas:
		d.found = append(d.found, finding{Metric: name,
			Note: "present only in baseline (current report lacks the block) — skipped"})
	case newHas:
		d.found = append(d.found, finding{Metric: name,
			Note: "present only in current (baseline report lacks the block) — skipped"})
	}
	return false
}

// run compares two dewrite/run reports (v1 through v5): the paper's quality
// metrics, all deterministic. The optional timeline, faults and attribution
// blocks are compared only when both reports carry them (see section).
func (d *differ) run(oldBlob, newBlob []byte) error {
	oldR, err := sim.DecodeRunReport(oldBlob)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	newR, err := sim.DecodeRunReport(newBlob)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	if oldR.App != newR.App || oldR.Scheme != newR.Scheme {
		d.found = append(d.found, finding{
			Metric:     "run",
			Note:       fmt.Sprintf("comparing %s/%s against %s/%s", oldR.App, oldR.Scheme, newR.App, newR.Scheme),
			Regression: true,
		})
	}
	th := d.opts.Threshold
	lat := func(prefix string, o, n sim.LatencyQuantiles) {
		d.compare(prefix+".mean", float64(o.MeanPs), float64(n.MeanPs), th, +1)
		d.compare(prefix+".p50", float64(o.P50Ps), float64(n.P50Ps), th, +1)
		d.compare(prefix+".p95", float64(o.P95Ps), float64(n.P95Ps), th, +1)
		d.compare(prefix+".p99", float64(o.P99Ps), float64(n.P99Ps), th, +1)
		d.compare(prefix+".sum", float64(o.SumPs), float64(n.SumPs), th, +1)
	}
	lat("write_latency", oldR.WriteLatency, newR.WriteLatency)
	lat("read_latency", oldR.ReadLatency, newR.ReadLatency)
	d.compare("ipc", oldR.IPC, newR.IPC, th, -1)
	d.compare("energy_pj", oldR.EnergyPJ, newR.EnergyPJ, th, +1)
	d.compare("device.writes", float64(oldR.Device.Writes), float64(newR.Device.Writes), th, +1)
	d.compare("elapsed_ps", float64(oldR.ElapsedPs), float64(newR.ElapsedPs), th, +1)

	if d.section("timeline", oldR.Timeline != nil, newR.Timeline != nil) {
		o, n := oldR.Timeline, newR.Timeline
		d.compare("timeline.epochs", float64(len(o.Epochs)), float64(len(n.Epochs)), th, 0)
		if len(o.Epochs) > 0 && len(n.Epochs) > 0 {
			ol, nl := o.Epochs[len(o.Epochs)-1], n.Epochs[len(n.Epochs)-1]
			d.compare("timeline.final.wear_max", float64(ol.WearMax), float64(nl.WearMax), th, +1)
			d.compare("timeline.final.wear_gini", ol.WearGini, nl.WearGini, th, +1)
		}
	}
	if d.section("faults", oldR.Faults != nil, newR.Faults != nil) {
		o, n := oldR.Faults.Device, newR.Faults.Device
		d.compare("faults.worn_writes", float64(o.WornWrites), float64(n.WornWrites), th, +1)
		d.compare("faults.ecp_corrections", float64(o.ECPCorrections), float64(n.ECPCorrections), th, +1)
		d.compare("faults.remaps", float64(o.Remaps), float64(n.Remaps), th, +1)
		d.compare("faults.stuck_lines", float64(o.StuckLines), float64(n.StuckLines), th, +1)
		d.compare("faults.transient_bit_flips", float64(o.TransientBitFlips), float64(n.TransientBitFlips), th, 0)
		if d.section("faults.crash", oldR.Faults.Crash != nil, newR.Faults.Crash != nil) {
			oc, nc := oldR.Faults.Crash, newR.Faults.Crash
			d.compare("faults.crash.lost_mappings", float64(oc.LostMappings), float64(nc.LostMappings), th, +1)
			d.compare("faults.crash.recovered_mappings", float64(oc.RecoveredMappings), float64(nc.RecoveredMappings), th, -1)
			d.compare("faults.crash.poisoned_lines", float64(oc.PoisonedLines), float64(nc.PoisonedLines), th, +1)
		}
	}
	if d.section("attribution", oldR.Attribution != nil, newR.Attribution != nil) {
		o, n := oldR.Attribution, newR.Attribution
		if o.SamplePeriod != n.SamplePeriod {
			d.found = append(d.found, finding{Metric: "attribution.sample_period",
				Note: fmt.Sprintf("sample periods differ (%d vs %d) — sampled phase totals not comparable, skipped",
					o.SamplePeriod, n.SamplePeriod)})
		}
		d.compare("attribution.total_line_writes", float64(o.TotalLineWrites), float64(n.TotalLineWrites), th, +1)
		d.compare("attribution.energy_pj", o.EnergyPJ, n.EnergyPJ, th, +1)
		// Per-cause write counters matched by cause name: more writes of any
		// provenance is the bad direction (wear and energy). Causes only one
		// side knows (a newer taxonomy) are left alone.
		oldCauses := make(map[string]uint64, len(o.Causes))
		for _, c := range o.Causes {
			oldCauses[c.Cause] = c.Writes
		}
		for _, nc := range n.Causes {
			ow, ok := oldCauses[nc.Cause]
			if !ok {
				continue
			}
			d.compare("attribution.writes."+nc.Cause, float64(ow), float64(nc.Writes), th, +1)
		}
	}
	return nil
}

// ---- bench-file mode ----

// benchDoc mirrors the dewrite/bench/v1..v2 layout loosely: only the fields
// the comparison consumes, so the real writer can grow fields freely.
type benchDoc struct {
	Schema   string `json:"schema"`
	Quick    bool   `json:"quick"`
	Requests int    `json:"requests"`
	Warmup   int    `json:"warmup"`
	Seed     uint64 `json:"seed"`
	Perf     *struct {
		Workers          int     `json:"workers"`
		WallMS           float64 `json:"wall_ms"`
		Mallocs          float64 `json:"mallocs"`
		AllocsPerRequest float64 `json:"allocs_per_request"`
		SeqWallMS        float64 `json:"seq_wall_ms"`
		Speedup          float64 `json:"speedup"`
		Scaling          []struct {
			Workers int     `json:"workers"`
			WallMS  float64 `json:"wall_ms"`
			Speedup float64 `json:"speedup"`
		} `json:"scaling"`
	} `json:"perf"`
	Experiments []struct {
		ID     string  `json:"id"`
		WallMS float64 `json:"wall_ms"`
		Tables []struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	} `json:"experiments"`
}

// bench compares two benchmark snapshots: the perf block, per-experiment
// wall clocks, and every matched table cell.
func (d *differ) bench(oldBlob, newBlob []byte) error {
	var oldB, newB benchDoc
	if err := json.Unmarshal(oldBlob, &oldB); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(newBlob, &newB); err != nil {
		return fmt.Errorf("current: %w", err)
	}
	if oldB.Requests != newB.Requests || oldB.Warmup != newB.Warmup ||
		oldB.Seed != newB.Seed || oldB.Quick != newB.Quick {
		d.found = append(d.found, finding{
			Metric: "config",
			Note: fmt.Sprintf("snapshots use different configs (requests %d/%d, warmup %d/%d, seed %d/%d, quick %v/%v) — deltas may be meaningless",
				oldB.Requests, newB.Requests, oldB.Warmup, newB.Warmup, oldB.Seed, newB.Seed, oldB.Quick, newB.Quick),
			Regression: true,
		})
	}
	th, tt := d.opts.Threshold, d.opts.TimeThreshold
	if oldB.Perf != nil && newB.Perf != nil {
		d.compare("perf.wall_ms", oldB.Perf.WallMS, newB.Perf.WallMS, tt, +1)
		d.compare("perf.seq_wall_ms", oldB.Perf.SeqWallMS, newB.Perf.SeqWallMS, tt, +1)
		d.compare("perf.allocs_per_request", oldB.Perf.AllocsPerRequest, newB.Perf.AllocsPerRequest, th, +1)
		d.compare("perf.mallocs", oldB.Perf.Mallocs, newB.Perf.Mallocs, th, +1)
		if oldB.Perf.Workers == newB.Perf.Workers {
			d.compare("perf.speedup", oldB.Perf.Speedup, newB.Perf.Speedup, tt, -1)
		}
	}
	// The v2 scaling curve: points pair by worker count, wall clock gated
	// with the loose host threshold, speedup direction-aware (a drop means
	// the hot loop stopped converting workers into wall clock). A side
	// without the curve — a v1 baseline, or a run without -speedup — gets a
	// skip note instead of a diff against zeros.
	oldScaling := oldB.Perf != nil && len(oldB.Perf.Scaling) > 0
	newScaling := newB.Perf != nil && len(newB.Perf.Scaling) > 0
	if d.section("perf.scaling", oldScaling, newScaling) {
		oldPts := make(map[int]int, len(oldB.Perf.Scaling))
		for i, p := range oldB.Perf.Scaling {
			oldPts[p.Workers] = i
		}
		for _, np := range newB.Perf.Scaling {
			oi, ok := oldPts[np.Workers]
			if !ok {
				continue // new ladder rung: nothing to regress against
			}
			op := oldB.Perf.Scaling[oi]
			prefix := fmt.Sprintf("perf.scaling[%dw]", np.Workers)
			d.compare(prefix+".wall_ms", op.WallMS, np.WallMS, tt, +1)
			d.compare(prefix+".speedup", op.Speedup, np.Speedup, tt, -1)
		}
	}

	oldExps := make(map[string]int, len(oldB.Experiments))
	for i, e := range oldB.Experiments {
		oldExps[e.ID] = i
	}
	for _, ne := range newB.Experiments {
		oi, ok := oldExps[ne.ID]
		if !ok {
			continue // new experiment: nothing to regress against
		}
		oe := oldB.Experiments[oi]
		d.compare("exp."+ne.ID+".wall_ms", oe.WallMS, ne.WallMS, tt, +1)

		oldTables := make(map[string]int, len(oe.Tables))
		for i, tb := range oe.Tables {
			oldTables[tb.Title] = i
		}
		for _, nt := range ne.Tables {
			ti, ok := oldTables[nt.Title]
			if !ok {
				continue
			}
			d.table("exp."+ne.ID, oe.Tables[ti], nt)
		}
	}
	return nil
}

// table compares two same-titled tables cell by cell: rows are matched by
// their first column (the n-th "mcf" row pairs with the n-th "mcf" row, since
// ablation tables repeat the app label across parameter sweeps), columns by
// header. Host-dependent columns (marked "this host" by the bench writer) are
// skipped unless -include-host.
func (d *differ) table(prefix string, oldT, newT struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}) {
	oldRows := make(map[string][][]string, len(oldT.Rows))
	for _, row := range oldT.Rows {
		if len(row) > 0 {
			oldRows[row[0]] = append(oldRows[row[0]], row)
		}
	}
	oldCols := make(map[string]int, len(oldT.Columns))
	for i, c := range oldT.Columns {
		oldCols[c] = i
	}
	seen := make(map[string]int, len(newT.Rows))
	for _, newRow := range newT.Rows {
		if len(newRow) == 0 {
			continue
		}
		nth := seen[newRow[0]]
		seen[newRow[0]]++
		candidates := oldRows[newRow[0]]
		if nth >= len(candidates) {
			continue // row has no same-ranked counterpart
		}
		oldRow := candidates[nth]
		for ci := 1; ci < len(newRow) && ci < len(newT.Columns); ci++ {
			col := newT.Columns[ci]
			oi, ok := oldCols[col]
			if !ok || oi >= len(oldRow) {
				continue
			}
			if !d.opts.IncludeHost && strings.Contains(col, "this host") {
				continue
			}
			metric := fmt.Sprintf("%s[%s][%s/%s]", prefix, newT.Title, newRow[0], col)
			oldV, oldNum := cellValue(oldRow[oi])
			newV, newNum := cellValue(newRow[ci])
			switch {
			case oldNum && newNum:
				d.compare(metric, oldV, newV, d.opts.Threshold, 0)
			case oldRow[oi] != newRow[ci]:
				d.compared++
				d.found = append(d.found, finding{
					Metric:     metric,
					Note:       fmt.Sprintf("cell changed %q -> %q", oldRow[oi], newRow[ci]),
					Regression: true,
				})
			default:
				d.compared++
			}
		}
	}
}

// cellValue parses the leading number of a table cell ("321ns" -> 321,
// "54.2%" -> 54.2); the remainder must be a short unit suffix, otherwise the
// cell is treated as text.
func cellValue(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) {
		c := s[end]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
			c == 'e' || c == 'E' {
			end++
			continue
		}
		break
	}
	if end == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, false
	}
	if rest := s[end:]; len(rest) > 4 { // longer tail than a unit: text cell
		return 0, false
	}
	return v, true
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func load(t *testing.T, name string) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

var defaultOpts = diffOptions{Threshold: 0.05, TimeThreshold: 0.50}

// TestRunRegressionDetected is the acceptance-criteria check: an injected 10%
// write-latency regression in a fixture pair must be flagged.
func TestRunRegressionDetected(t *testing.T) {
	base := load(t, "run-baseline.json")
	regressed := load(t, "run-regressed.json")

	findings, compared, err := diff(base, regressed, defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if compared == 0 {
		t.Fatal("no metrics compared")
	}
	regressions := 0
	sawWriteLat := false
	for _, f := range findings {
		if !f.Regression {
			t.Errorf("unexpected non-regression finding: %s", f)
		}
		regressions++
		if strings.HasPrefix(f.Metric, "write_latency.") {
			sawWriteLat = true
			if f.Delta < 0.09 || f.Delta > 0.11 {
				t.Errorf("%s: delta %.3f, want ~0.10", f.Metric, f.Delta)
			}
		}
	}
	if !sawWriteLat {
		t.Fatalf("10%% write-latency regression not flagged; findings: %v", findings)
	}
	// All five write-latency quantile metrics moved by 10%; nothing else did.
	if regressions != 5 {
		t.Errorf("got %d regression(s), want 5: %v", regressions, findings)
	}
}

func TestRunIdenticalPairClean(t *testing.T) {
	base := load(t, "run-baseline.json")
	findings, compared, err := diff(base, base, defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("identical pair produced findings: %v", findings)
	}
	if compared < 10 {
		t.Fatalf("compared only %d metrics", compared)
	}
}

// TestRunImprovementNotRegression: a latency drop crosses the threshold but
// is reported as a change, not a regression.
func TestRunImprovementNotRegression(t *testing.T) {
	base := load(t, "run-baseline.json")
	regressed := load(t, "run-regressed.json")

	// Swapped order: the "new" file is 10% faster.
	findings, _, err := diff(regressed, base, defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Regression {
			t.Errorf("improvement flagged as regression: %s", f)
		}
	}
	if len(findings) == 0 {
		t.Fatal("improvement beyond threshold should still be reported")
	}
}

func TestRunV1SchemaAccepted(t *testing.T) {
	base := load(t, "run-baseline.json")
	v1 := []byte(strings.Replace(string(base), "dewrite/run/v2", "dewrite/run/v1", 1))
	if _, _, err := diff(v1, base, defaultOpts); err != nil {
		t.Fatalf("v1-vs-v2 run pair should compare: %v", err)
	}
}

func TestMixedKindsRejected(t *testing.T) {
	run := load(t, "run-baseline.json")
	bench := []byte(`{"schema":"dewrite/bench/v1","experiments":[]}`)
	if _, _, err := diff(run, bench, defaultOpts); err == nil {
		t.Fatal("mixed kinds should be an error")
	}
	if _, _, err := diff([]byte(`{}`), run, defaultOpts); err == nil {
		t.Fatal("missing schema should be an error")
	}
}

const benchBase = `{
  "schema": "dewrite/bench/v1",
  "quick": true, "requests": 20000, "warmup": 2000, "seed": 42,
  "perf": {"workers": 4, "wall_ms": 1000, "mallocs": 50000, "allocs_per_request": 0.04},
  "experiments": [{
    "id": "fig14", "wall_ms": 400,
    "tables": [{
      "title": "Write latency",
      "columns": ["app", "DeWrite ns", "SecureNVM ns", "sw ns/line (this host)"],
      "rows": [["mcf", "321ns", "480ns", "55.1"],
               ["gcc", "300ns", "450ns", "54.2"]]
    }]
  }]
}`

func TestBenchTableCellRegression(t *testing.T) {
	// A deterministic table cell drifts 10%: flagged at the tight threshold.
	cur := strings.Replace(benchBase, `"321ns"`, `"353ns"`, 1)
	findings, compared, err := diff([]byte(benchBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if compared == 0 {
		t.Fatal("no metrics compared")
	}
	if len(findings) != 1 || !findings[0].Regression {
		t.Fatalf("findings = %v, want one regression", findings)
	}
	if !strings.Contains(findings[0].Metric, "mcf") || !strings.Contains(findings[0].Metric, "DeWrite ns") {
		t.Fatalf("finding names wrong cell: %s", findings[0].Metric)
	}
}

func TestBenchHostColumnsSkipped(t *testing.T) {
	// Host-dependent column drifts wildly: ignored by default, compared
	// with -include-host.
	cur := strings.Replace(benchBase, `"55.1"`, `"99.9"`, 1)
	findings, _, err := diff([]byte(benchBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("host column compared by default: %v", findings)
	}
	withHost := defaultOpts
	withHost.IncludeHost = true
	findings, _, err = diff([]byte(benchBase), []byte(cur), withHost)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("-include-host should flag the drift: %v", findings)
	}
}

func TestBenchWallClockUsesLooseThreshold(t *testing.T) {
	// +30% wall clock: within the 50% noise allowance.
	cur := strings.Replace(benchBase, `"wall_ms": 1000`, `"wall_ms": 1300`, 1)
	findings, _, err := diff([]byte(benchBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("30%% wall-clock drift should pass: %v", findings)
	}
	// +80% is beyond it.
	cur = strings.Replace(benchBase, `"wall_ms": 1000`, `"wall_ms": 1800`, 1)
	findings, _, err = diff([]byte(benchBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "perf.wall_ms" {
		t.Fatalf("80%% wall-clock drift should be flagged: %v", findings)
	}
}

func TestBenchConfigMismatchNoted(t *testing.T) {
	cur := strings.Replace(benchBase, `"seed": 42`, `"seed": 43`, 1)
	findings, _, err := diff([]byte(benchBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Metric == "config" && f.Regression {
			found = true
		}
	}
	if !found {
		t.Fatalf("seed mismatch should be surfaced: %v", findings)
	}
}

// TestBenchRepeatedRowLabels: ablation tables repeat the app label across a
// parameter sweep; the n-th "mcf" row must pair with the n-th "mcf" row, so a
// self-compare stays clean and a drift in one sweep point is attributed once.
func TestBenchRepeatedRowLabels(t *testing.T) {
	sweep := `{
	  "schema": "dewrite/bench/v1", "quick": true, "requests": 1, "warmup": 0, "seed": 1,
	  "experiments": [{"id": "abl", "wall_ms": 1, "tables": [{
	    "title": "sweep", "columns": ["app", "bits", "rate"],
	    "rows": [["mcf", "8", "0.50"], ["mcf", "16", "0.70"], ["mcf", "32", "0.80"]]
	  }]}]
	}`
	findings, _, err := diff([]byte(sweep), []byte(sweep), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("self-compare with repeated labels produced findings: %v", findings)
	}
	cur := strings.Replace(sweep, `"0.70"`, `"0.90"`, 1)
	findings, _, err = diff([]byte(sweep), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Metric, "rate") {
		t.Fatalf("middle sweep row drift should yield one finding: %v", findings)
	}
}

const benchScalingBase = `{
  "schema": "dewrite/bench/v2",
  "quick": true, "requests": 20000, "warmup": 2000, "seed": 42,
  "perf": {"workers": 8, "wall_ms": 1000, "mallocs": 50000, "allocs_per_request": 0.04,
    "seq_wall_ms": 4000, "speedup": 4.0,
    "scaling": [{"workers": 1, "wall_ms": 800, "speedup": 1.0},
                {"workers": 2, "wall_ms": 420, "speedup": 1.9},
                {"workers": 4, "wall_ms": 230, "speedup": 3.5},
                {"workers": 8, "wall_ms": 130, "speedup": 6.2}]},
  "experiments": []
}`

// TestBenchScalingRegressionGated: a collapse of the 8-worker speedup is a
// regression; the same move in the other direction is reported as a change,
// not a regression (direction-aware gating).
func TestBenchScalingRegressionGated(t *testing.T) {
	cur := strings.Replace(benchScalingBase, `"workers": 8, "wall_ms": 130, "speedup": 6.2`,
		`"workers": 8, "wall_ms": 130, "speedup": 1.1`, 1)
	findings, _, err := diff([]byte(benchScalingBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !findings[0].Regression || findings[0].Metric != "perf.scaling[8w].speedup" {
		t.Fatalf("want one perf.scaling[8w].speedup regression, got: %v", findings)
	}

	// Reversed: the curve improved; still reported, but not as a regression.
	findings, _, err = diff([]byte(cur), []byte(benchScalingBase), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Regression {
		t.Fatalf("speedup improvement should be a non-regression finding: %v", findings)
	}
}

// TestBenchScalingWallClockLooseThreshold: curve wall clocks are host noise
// and use the loose threshold; a 30% drift passes, an order-of-magnitude
// slowdown is a regression.
func TestBenchScalingWallClockLooseThreshold(t *testing.T) {
	cur := strings.Replace(benchScalingBase, `"workers": 4, "wall_ms": 230`,
		`"workers": 4, "wall_ms": 300`, 1)
	findings, _, err := diff([]byte(benchScalingBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("30%% curve wall-clock drift should pass: %v", findings)
	}
	cur = strings.Replace(benchScalingBase, `"workers": 4, "wall_ms": 230`,
		`"workers": 4, "wall_ms": 2300`, 1)
	findings, _, err = diff([]byte(benchScalingBase), []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !findings[0].Regression || findings[0].Metric != "perf.scaling[4w].wall_ms" {
		t.Fatalf("10x curve wall-clock drift should be flagged: %v", findings)
	}
}

// TestBenchScalingMissingBaselineNote: a v1 baseline (no curve) against a v2
// snapshot with one compares cleanly — the curve yields a skip note, never a
// zero-diff regression — and the mixed v1/v2 schema pair is accepted.
func TestBenchScalingMissingBaselineNote(t *testing.T) {
	findings, compared, err := diff([]byte(benchBase), []byte(benchScalingBase), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if compared == 0 {
		t.Fatal("no metrics compared across the v1/v2 pair")
	}
	noted := false
	for _, f := range findings {
		if strings.HasPrefix(f.Metric, "perf.scaling") {
			if f.Regression || !strings.Contains(f.Note, "skipped") {
				t.Errorf("missing curve should be a skip note: %s", f)
			}
			noted = true
		}
	}
	if !noted {
		t.Fatalf("want a perf.scaling skip note, got: %v", findings)
	}
}

func TestCellValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		num  bool
	}{
		{"321ns", 321, true},
		{"54.2", 54.2, true},
		{"12.5%", 12.5, true},
		{"1.2e3", 1200, true},
		{"-0.5", -0.5, true},
		{"mcf", 0, false},
		{"", 0, false},
		{"3 reads out of 10", 0, false},
	}
	for _, c := range cases {
		got, num := cellValue(c.in)
		if num != c.num || (num && got != c.want) {
			t.Errorf("cellValue(%q) = %v,%v want %v,%v", c.in, got, num, c.want, c.num)
		}
	}
}

// TestRunMissingBlocksSkippedWithNote: a report without the optional timeline
// or faults blocks (an older schema, or a run that never armed them) is never
// diffed against zeros — the mismatch is a note, not a regression.
func TestRunMissingBlocksSkippedWithNote(t *testing.T) {
	base := load(t, "run-baseline.json")
	// Give the current report the v3 blocks the baseline lacks.
	cur := strings.Replace(string(base), `"schema": "dewrite/run/v2"`,
		`"schema": "dewrite/run/v3",
  "timeline": {"epoch_by": "requests", "every": 100, "epochs": [{"index": 0, "wear_max": 9, "wear_gini": 0.4}]},
  "faults": {"config": {"seed": 7, "endurance": 100}, "device": {"worn_writes": 1234, "stuck_lines": 9}}`, 1)

	findings, _, err := diff(base, []byte(cur), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	notes := map[string]bool{}
	for _, f := range findings {
		if f.Regression {
			t.Errorf("missing block flagged as regression: %s", f)
		}
		if f.Note == "" || !strings.Contains(f.Note, "skipped") {
			t.Errorf("expected a skip note, got: %s", f)
		}
		notes[f.Metric] = true
	}
	if !notes["timeline"] || !notes["faults"] {
		t.Fatalf("want skip notes for both timeline and faults, got: %v", findings)
	}
	// Same pair reversed: still notes, still no zero-diff regressions.
	findings, _, err = diff([]byte(cur), base, defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Regression {
			t.Errorf("reversed pair: missing block flagged as regression: %s", f)
		}
	}
}

// TestRunAttributionBlocksCompared: when both reports carry the v4
// attribution block, the total and per-cause write counters are diffed with
// more-writes-is-worse direction; a baseline without the block yields a skip
// note instead of zero-diff regressions.
func TestRunAttributionBlocksCompared(t *testing.T) {
	base := load(t, "run-baseline.json")
	withAttr := func(metaWrites int) []byte {
		return []byte(strings.Replace(string(base), `"schema": "dewrite/run/v2"`,
			fmt.Sprintf(`"schema": "dewrite/run/v4",
  "attribution": {"sample_period": 1024, "sampled_writes": 10, "sampled_reads": 8,
    "sampled_write_ps": 1, "sampled_read_ps": 1,
    "causes": [{"cause": "unique", "writes": 5000, "energy_pj": 10},
               {"cause": "metadata", "writes": %d, "energy_pj": 2}],
    "total_line_writes": %d, "energy_pj": 12}`, metaWrites, 5000+metaWrites), 1))
	}
	findings, _, err := diff(withAttr(1000), withAttr(1200), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]finding{}
	for _, f := range findings {
		if !f.Regression {
			t.Errorf("attribution growth should be a regression: %s", f)
		}
		byMetric[f.Metric] = f
	}
	if _, ok := byMetric["attribution.writes.metadata"]; !ok {
		t.Errorf("per-cause metadata growth not flagged: %v", findings)
	}
	if _, ok := byMetric["attribution.total_line_writes"]; ok {
		// 6200 vs 6000 is ~3.3%, under the 5% threshold.
		t.Errorf("total within threshold should not be flagged: %v", findings)
	}
	if _, ok := byMetric["attribution.writes.unique"]; ok {
		t.Errorf("unchanged cause flagged: %v", findings)
	}

	// Baseline without the block: note, never a regression.
	findings, _, err = diff(base, withAttr(1000), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	noted := false
	for _, f := range findings {
		if f.Regression {
			t.Errorf("missing attribution block flagged as regression: %s", f)
		}
		if f.Metric == "attribution" && strings.Contains(f.Note, "skipped") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("want an attribution skip note, got: %v", findings)
	}
}

// TestRunAttributionSamplePeriodMismatch: differing sample periods produce a
// note (sampled totals are not comparable) while the exhaustive provenance
// counters are still diffed.
func TestRunAttributionSamplePeriodMismatch(t *testing.T) {
	base := load(t, "run-baseline.json")
	withPeriod := func(period int) []byte {
		return []byte(strings.Replace(string(base), `"schema": "dewrite/run/v2"`,
			fmt.Sprintf(`"schema": "dewrite/run/v4",
  "attribution": {"sample_period": %d, "causes": [{"cause": "unique", "writes": 100, "energy_pj": 1}],
    "total_line_writes": 100, "energy_pj": 1}`, period), 1))
	}
	findings, _, err := diff(withPeriod(64), withPeriod(1024), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "attribution.sample_period" ||
		findings[0].Regression || !strings.Contains(findings[0].Note, "skipped") {
		t.Fatalf("want one sample-period note, got: %v", findings)
	}
}

// TestRunFaultsBlocksCompared: when both reports carry a faults block its
// metrics are diffed like any other.
func TestRunFaultsBlocksCompared(t *testing.T) {
	base := load(t, "run-baseline.json")
	withFaults := func(worn int) []byte {
		return []byte(strings.Replace(string(base), `"schema": "dewrite/run/v2"`,
			fmt.Sprintf(`"schema": "dewrite/run/v3",
  "faults": {"config": {"seed": 7, "endurance": 100}, "device": {"worn_writes": %d}}`, worn), 1))
	}
	findings, _, err := diff(withFaults(1000), withFaults(1200), defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !findings[0].Regression || findings[0].Metric != "faults.worn_writes" {
		t.Fatalf("want one faults.worn_writes regression, got: %v", findings)
	}
}

// Command dedupscan measures the cache-line-level duplication of real data:
// it slices files (or stdin) into 256 B lines and reports how many are
// duplicates — the statistic Figure 2 of the paper reports for memory write
// streams, applied to anything on disk. It also reports what a DeWrite-style
// CRC-32 fingerprint index would have done: fingerprint matches, confirmed
// duplicates and collisions.
//
// Usage:
//
//	dedupscan file1 [file2 ...]
//	cat data | dedupscan -
//	dedupscan -json file1          # one JSON array of per-input results
//	dedupscan -epoch 4096 file1    # also report the per-epoch dup ratio
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dewrite/internal/attr"
	"dewrite/internal/config"
	"dewrite/internal/hashes"
	"dewrite/internal/timeline"
	"dewrite/internal/units"
)

// scanResult aggregates one input's line statistics.
type scanResult struct {
	Name         string `json:"name"`
	Lines        uint64 `json:"lines"`
	Duplicates   uint64 `json:"duplicates"` // lines whose exact content appeared before
	ZeroLines    uint64 `json:"zero_lines"`
	FPMatches    uint64 `json:"fp_matches"`   // CRC-32 fingerprint matched a previous line
	Collisions   uint64 `json:"collisions"`   // fingerprint matched but content differed
	UniqueLines  uint64 `json:"unique_lines"` // distinct contents
	DistinctFPs  uint64 `json:"distinct_fps"` // distinct fingerprints
	BytesScanned uint64 `json:"bytes_scanned"`

	// Timeline is the per-epoch dup/zero-ratio series, present under -epoch.
	// Epoch "time" is the line index, so end_ps reads as lines scanned.
	Timeline *timeline.Report `json:"timeline,omitempty"`

	// Attribution is the would-be write-provenance ledger, present under
	// -attr: the physical line writes a DeWrite controller would issue for
	// this stream. Unique non-zero contents are placed once (cause "unique");
	// duplicates and zero lines are eliminated and issue nothing. Banks follow
	// the default device interleaving. Energy is zero — a disk scan has no
	// device energy model.
	Attribution []attr.CauseStat `json:"attribution,omitempty"`
}

// scanBanks and scanBankInterleave mirror the default simulated device
// geometry (2 ranks x 4 banks, 16-line row interleave), so the per-bank
// spread of would-be unique placements is comparable to simulator output.
const (
	scanBanks          = 8
	scanBankInterleave = 16
)

// scan reads r to EOF, accumulating line statistics. The final partial line,
// if any, is zero-padded to line size (as a memory image would be). A
// positive every closes one timeline epoch per that many lines; withAttr
// additionally builds the would-be write-provenance ledger.
func scan(r io.Reader, every uint64, withAttr bool) (scanResult, error) {
	var res scanResult
	var led *attr.Ledger
	if withAttr {
		led = new(attr.Ledger)
	}
	var tl *timeline.Collector
	var src timeline.Sampler
	if every > 0 {
		tl = timeline.NewByRequests(every, 0)
		src = timeline.SamplerFunc(func(e *timeline.Epoch, _ units.Time) {
			e.Writes = res.Lines
			e.DupEliminated = res.Duplicates
			e.ZeroWrites = res.ZeroLines
		})
	}
	seen := make(map[string]bool)    // exact contents
	fps := make(map[uint32][]string) // fingerprint → distinct contents carrying it
	line := make([]byte, config.LineSize)
	for {
		n, err := io.ReadFull(r, line)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			for i := n; i < config.LineSize; i++ {
				line[i] = 0
			}
		} else if err != nil {
			return res, err
		}
		res.Lines++
		res.BytesScanned += uint64(n)

		key := string(line)
		zero := isZero(line)
		if seen[key] {
			res.Duplicates++
		} else {
			seen[key] = true
			res.UniqueLines++
			if !zero {
				// The nil ledger (scan without -attr) drops the record.
				led.RecordWrite(attr.CauseUnique,
					int((res.Lines-1)/scanBankInterleave%scanBanks), 0)
			}
		}
		if zero {
			res.ZeroLines++
		}

		fp := hashes.CRC32(line)
		if prev, ok := fps[fp]; ok {
			res.FPMatches++
			matched := false
			for _, p := range prev {
				if p == key {
					matched = true
					break
				}
			}
			if !matched {
				res.Collisions++
				fps[fp] = append(prev, key)
			}
		} else {
			fps[fp] = []string{key}
			res.DistinctFPs++
		}
		tl.Tick(units.Time(res.Lines), res.Lines, src)
		if err == io.ErrUnexpectedEOF {
			break
		}
	}
	tl.Finish(units.Time(res.Lines), res.Lines, src)
	res.Timeline = tl.Report()
	if withAttr {
		res.Attribution = led.Causes()
	}
	return res, nil
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func report(name string, r scanResult) {
	fmt.Printf("%s: %d lines (%d KB)\n", name, r.Lines, r.BytesScanned/1024)
	reportBody(r)
}

func reportBody(r scanResult) {
	fmt.Printf("  duplicates        %8d  (%.1f%% — what DeWrite would eliminate)\n",
		r.Duplicates, pct(r.Duplicates, r.Lines))
	fmt.Printf("  zero lines        %8d  (%.1f%% — what Silent Shredder would eliminate)\n",
		r.ZeroLines, pct(r.ZeroLines, r.Lines))
	fmt.Printf("  unique contents   %8d\n", r.UniqueLines)
	fmt.Printf("  CRC-32 collisions %8d  (%.4f%% of fingerprint matches)\n",
		r.Collisions, pct(r.Collisions, max64(r.FPMatches, 1)))
	if r.Attribution != nil {
		var total uint64
		for _, c := range r.Attribution {
			total += c.Writes
		}
		fmt.Printf("  would-be DeWrite line writes %d (%.1f%% of lines):\n", total, pct(total, r.Lines))
		for _, c := range r.Attribution {
			if c.Writes == 0 {
				continue
			}
			fmt.Printf("    %-10s %8d writes, banks %v\n", c.Cause, c.Writes, c.BankWrites)
		}
	}
	if r.Timeline != nil && len(r.Timeline.Epochs) > 0 {
		fmt.Printf("  per-epoch dup%% (every %d lines):", r.Timeline.Every)
		for _, e := range r.Timeline.Epochs {
			fmt.Printf(" %.1f", e.DupRatio*100)
		}
		fmt.Println()
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON array of per-input results on stdout")
	epoch := flag.Uint64("epoch", 0, "also report the dup ratio per this many lines (0 disables)")
	attrOn := flag.Bool("attr", false, "also report the would-be DeWrite write provenance per cause and bank")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dedupscan [-json] [-epoch N] [-attr] <file>... | dedupscan -")
		os.Exit(2)
	}
	var results []scanResult
	for _, path := range args {
		var r io.Reader
		name := path
		if path == "-" {
			r = os.Stdin
			name = "stdin"
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dedupscan: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		res, err := scan(r, *epoch, *attrOn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupscan: %s: %v\n", name, err)
			os.Exit(1)
		}
		res.Name = name
		if *jsonOut {
			results = append(results, res)
		} else {
			report(name, res)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "dedupscan: %v\n", err)
			os.Exit(1)
		}
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"

	"dewrite/internal/config"
)

func TestScanCountsDuplicates(t *testing.T) {
	a := bytes.Repeat([]byte{0xaa}, config.LineSize)
	b := bytes.Repeat([]byte{0xbb}, config.LineSize)
	zero := make([]byte, config.LineSize)
	var in bytes.Buffer
	for _, l := range [][]byte{a, b, a, a, zero, zero, b} {
		in.Write(l)
	}
	res, err := scan(&in, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 7 {
		t.Fatalf("Lines = %d", res.Lines)
	}
	// a×3 (2 dups), b×2 (1 dup), zero×2 (1 dup) → 4 duplicates.
	if res.Duplicates != 4 {
		t.Fatalf("Duplicates = %d, want 4", res.Duplicates)
	}
	if res.ZeroLines != 2 {
		t.Fatalf("ZeroLines = %d", res.ZeroLines)
	}
	if res.UniqueLines != 3 {
		t.Fatalf("UniqueLines = %d", res.UniqueLines)
	}
	if res.Collisions != 0 {
		t.Fatalf("Collisions = %d", res.Collisions)
	}
}

func TestScanPadsTrailingPartialLine(t *testing.T) {
	// A lone partial line padded with zeros is NOT the zero line unless its
	// content was zero.
	res, err := scan(strings.NewReader("abc"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 1 || res.ZeroLines != 0 {
		t.Fatalf("partial line handling: %+v", res)
	}
	// All-zero partial input pads to the zero line.
	res, err = scan(bytes.NewReader(make([]byte, 10)), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroLines != 1 {
		t.Fatalf("zero partial not detected: %+v", res)
	}
}

func TestScanEmptyInput(t *testing.T) {
	res, err := scan(strings.NewReader(""), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 0 {
		t.Fatalf("Lines = %d", res.Lines)
	}
}

// TestScanEpochTimeline: -epoch slices the stream into fixed line-count
// epochs whose dup ratios reflect each slice, not the whole file.
func TestScanEpochTimeline(t *testing.T) {
	a := bytes.Repeat([]byte{0xaa}, config.LineSize)
	var in bytes.Buffer
	// First 4 lines: a, then 3 dups of a (epoch dup ratio 3/4 after the
	// opener). Next 4 lines: four distinct contents (epoch dup ratio 0).
	for i := 0; i < 4; i++ {
		in.Write(a)
	}
	for i := 0; i < 4; i++ {
		u := make([]byte, config.LineSize)
		u[0] = byte(i + 1)
		in.Write(u)
	}
	res, err := scan(&in, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || len(res.Timeline.Epochs) != 2 {
		t.Fatalf("timeline = %+v, want 2 epochs", res.Timeline)
	}
	e0, e1 := res.Timeline.Epochs[0], res.Timeline.Epochs[1]
	if e0.DupRatio != 0.75 {
		t.Errorf("epoch 0 dup ratio = %v, want 0.75", e0.DupRatio)
	}
	if e1.DupRatio != 0 {
		t.Errorf("epoch 1 dup ratio = %v, want 0", e1.DupRatio)
	}
	if e1.EndPs != 8 {
		t.Errorf("epoch 1 end = %v, want line index 8", e1.EndPs)
	}

	// Without -epoch the field stays absent.
	in.Reset()
	in.Write(a)
	res, err = scan(&in, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Fatalf("timeline without -epoch: %+v", res.Timeline)
	}
}

// TestScanAttribution: -attr builds the would-be DeWrite provenance ledger —
// one "unique" placement per distinct non-zero content, duplicates and zero
// lines eliminated.
func TestScanAttribution(t *testing.T) {
	a := bytes.Repeat([]byte{0xaa}, config.LineSize)
	b := bytes.Repeat([]byte{0xbb}, config.LineSize)
	zero := make([]byte, config.LineSize)
	var in bytes.Buffer
	for _, l := range [][]byte{a, b, a, zero, zero} {
		in.Write(l)
	}
	res, err := scan(&in, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attribution == nil {
		t.Fatal("no attribution under -attr")
	}
	var total uint64
	for _, c := range res.Attribution {
		total += c.Writes
		if c.Cause == "unique" {
			if c.Writes != 2 {
				t.Errorf("unique writes = %d, want 2 (a, b)", c.Writes)
			}
			// Lines 0 and 1 both land on bank 0 of the 16-line interleave.
			if len(c.BankWrites) != 1 || c.BankWrites[0] != 2 {
				t.Errorf("unique bank writes = %v, want [2]", c.BankWrites)
			}
		} else if c.Writes != 0 {
			t.Errorf("cause %s has %d writes, want 0", c.Cause, c.Writes)
		}
	}
	if total != 2 {
		t.Errorf("total would-be writes = %d, want 2", total)
	}

	// Without -attr the block stays absent, keeping JSON output unchanged.
	in.Reset()
	in.Write(a)
	res, err = scan(&in, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attribution != nil {
		t.Fatalf("attribution without -attr: %+v", res.Attribution)
	}
}

func TestScanLargeRepetitiveInput(t *testing.T) {
	// A "memory image" with heavy redundancy: 90% of lines drawn from a
	// 4-content pool.
	var in bytes.Buffer
	pool := make([][]byte, 4)
	for i := range pool {
		pool[i] = bytes.Repeat([]byte{byte(i + 1)}, config.LineSize)
	}
	for i := 0; i < 1000; i++ {
		if i%10 == 9 {
			unique := make([]byte, config.LineSize)
			unique[0] = byte(i)
			unique[1] = byte(i >> 8)
			unique[100] = 0x5a
			in.Write(unique)
		} else {
			in.Write(pool[i%4])
		}
	}
	res, err := scan(&in, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Duplicates) / float64(res.Lines)
	if frac < 0.85 {
		t.Fatalf("duplicate fraction = %.2f, want ~0.9", frac)
	}
}

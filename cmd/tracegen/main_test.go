package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dewrite/internal/trace"
)

func TestBuildTrace(t *testing.T) {
	tr, err := buildTrace("mcf", 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mcf" || len(tr.Requests) != 500 {
		t.Fatalf("trace = %s/%d", tr.Name, len(tr.Requests))
	}
	if _, err := buildTrace("nope", 1, 10); err == nil {
		t.Fatal("expected error for unknown app")
	}
	if _, err := buildTrace("mcf", 1, 0); err == nil {
		t.Fatal("expected error for zero count")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr, err := buildTrace("worstcase", 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := trace.ReadTrace(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("requests = %d, want %d", len(got.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], got.Requests[i]
		if a.Op != b.Op || a.Addr != b.Addr || !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("request %d differs", i)
		}
	}
}

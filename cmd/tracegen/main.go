// Command tracegen materializes a synthetic memory trace for one application
// profile into a file (or summarizes an existing trace file).
//
// Usage:
//
//	tracegen -app lbm -n 100000 -o lbm.trace
//	tracegen -summarize lbm.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dewrite/internal/trace"
	"dewrite/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "lbm", "application profile (or 'worstcase')")
		n         = flag.Int("n", 100000, "number of requests")
		out       = flag.String("o", "", "output file (required unless -summarize)")
		seed      = flag.Uint64("seed", 42, "workload seed")
		summarize = flag.String("summarize", "", "summarize an existing trace file and exit")
	)
	flag.Parse()

	if *summarize != "" {
		f, err := os.Open(*summarize)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr, err := trace.ReadTrace(f)
		if err != nil {
			fail(err)
		}
		s := tr.Summarize()
		fmt.Printf("trace   %s (%d logical lines)\n", tr.Name, tr.Lines)
		fmt.Printf("requests %d (writes %d, reads %d)\n", s.Requests, s.Writes, s.Reads)
		fmt.Printf("threads  %d, max address %d\n", s.Threads, s.MaxAddr)
		return
	}

	if *out == "" {
		fail(fmt.Errorf("missing -o output file"))
	}
	tr, err := buildTrace(*app, *seed, *n)
	if err != nil {
		fail(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	written, err := tr.WriteTo(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d requests (%d bytes) for %s to %s\n", *n, written, tr.Name, *out)
}

// buildTrace materializes n requests of the named application profile.
func buildTrace(app string, seed uint64, n int) (*trace.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("request count %d must be positive", n)
	}
	var prof workload.Profile
	if app == "worstcase" {
		prof = workload.WorstCase()
	} else {
		var ok bool
		prof, ok = workload.ByName(app)
		if !ok {
			return nil, fmt.Errorf("unknown app %q", app)
		}
	}
	return workload.Generate(prof, seed, n), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}

GO ?= go

.PHONY: all build test lint vet bench

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus dewrite-vet, the repository's custom analyzer suite
# (determinism, poolrecycle, nilsafe, reportcompat — see DESIGN.md §10).
lint: vet
	$(GO) run ./cmd/dewrite-vet ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

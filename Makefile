GO ?= go

.PHONY: all build test lint vet bench

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs gofmt (fail on any unformatted file), go vet, and dewrite-vet,
# the repository's custom analyzer suite (determinism, poolrecycle, nilsafe,
# reportcompat, atomichygiene, lockdiscipline, goroutinelifecycle,
# booksbalance — see DESIGN.md §10 and §15).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/dewrite-vet ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

module dewrite

go 1.22

// Deliberately dependency-free: the whole evaluation stack, including the
// dewrite-vet static-analysis suite, builds against the standard library
// alone. internal/lint/analysis mirrors the golang.org/x/tools/go/analysis
// API so the analyzers could be repointed at a pinned x/tools if this module
// ever takes on dependencies (see DESIGN.md §10 for why it is not pinned
// today).
module dewrite

go 1.22

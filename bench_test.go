// Package bench provides one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its experiment end to
// end at the quick scale (representative application subset, reduced request
// counts); run the full-scale versions with cmd/dewrite-bench.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFigure14
package bench

import (
	"testing"

	"dewrite/internal/experiments"
)

// runExperiment drives one registered experiment per benchmark iteration
// with a fresh suite, so memoization never hides work. Suites are built
// before the timer starts — the measured region (and the reported allocs/op)
// covers only the experiment itself.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	suites := make([]*experiments.Suite, b.N)
	for i := range suites {
		suites[i] = experiments.NewSuite(experiments.QuickOptions())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(suites[i])
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkTableI(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkFigure2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFigure4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFigure6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFigure12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFigure15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFigure16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkFigure18(b *testing.B)  { runExperiment(b, "fig18") }
func BenchmarkFigure19(b *testing.B)  { runExperiment(b, "fig19") }
func BenchmarkFigure20(b *testing.B)  { runExperiment(b, "fig20") }
func BenchmarkFigure21(b *testing.B)  { runExperiment(b, "fig21") }
func BenchmarkTableMeta(b *testing.B) { runExperiment(b, "tablemeta") }

func BenchmarkAblationPNA(b *testing.B)        { runExperiment(b, "abl-pna") }
func BenchmarkAblationHistory(b *testing.B)    { runExperiment(b, "abl-history") }
func BenchmarkAblationRefWidth(b *testing.B)   { runExperiment(b, "abl-refwidth") }
func BenchmarkAblationModes(b *testing.B)      { runExperiment(b, "abl-modes") }
func BenchmarkAblationHashWidth(b *testing.B)  { runExperiment(b, "abl-hashwidth") }
func BenchmarkAblationWearLevel(b *testing.B)  { runExperiment(b, "abl-wear") }
func BenchmarkAblationPersist(b *testing.B)    { runExperiment(b, "abl-persist") }
func BenchmarkAblationHierarchy(b *testing.B)  { runExperiment(b, "abl-hierarchy") }
func BenchmarkAblationCacheScale(b *testing.B) { runExperiment(b, "abl-cachescale") }
func BenchmarkAblationOpenLoop(b *testing.B)   { runExperiment(b, "abl-openloop") }
func BenchmarkAblationBus(b *testing.B)        { runExperiment(b, "abl-bus") }
func BenchmarkAblationPhases(b *testing.B)     { runExperiment(b, "abl-phases") }
func BenchmarkAblationIntegrity(b *testing.B)  { runExperiment(b, "abl-integrity") }
func BenchmarkAblationSeeds(b *testing.B)      { runExperiment(b, "abl-seeds") }
func BenchmarkAblationRowPolicy(b *testing.B)  { runExperiment(b, "abl-rowpolicy") }

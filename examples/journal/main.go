// journal: a write-ahead log on persistent memory — the fsync-heavy,
// ordering-sensitive workload persistent memory exists for. Journals are
// full of duplication (repeated commit markers, padded records, recurring
// payloads), and every append must persist before the next, so write latency
// sits directly on the commit path. The example measures transaction commit
// latency on DeWrite versus the traditional secure NVM, under both metadata
// persistence schemes.
package main

import (
	"fmt"
	"log"

	"dewrite/internal/baseline"
	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/rng"
	"dewrite/internal/sim"
	"dewrite/internal/units"
)

// journal appends fixed-size records to a line-addressable log region.
type journal struct {
	mem  sim.Memory
	head uint64
	cap  uint64
	now  units.Time
}

// commitMarker is the one-line record closing every transaction — the
// classic high-duplication journal content.
var commitMarker = func() []byte {
	line := make([]byte, config.LineSize)
	copy(line, "COMMIT\x00\x00dewrite-journal-v1")
	return line
}()

// append writes one record line and waits for it to persist (the WAL
// ordering rule).
func (j *journal) append(line []byte) {
	if j.head == j.cap {
		j.head = 0 // circular log
	}
	j.now = j.mem.Write(j.now, j.head, line)
	j.head++
}

func main() {
	const (
		logLines = 8192
		txs      = 2000
	)
	cfg := config.Default()
	cfg.NVM.Ranks = 2
	cfg.NVM.BanksPerRank = 4

	// A transaction: 1-4 payload records + a commit marker. Payloads repeat
	// heavily (the same small set of operations dominates most logs).
	runJournal := func(mem sim.Memory) units.Duration {
		j := &journal{mem: mem, cap: logLines}
		src := rng.New(77)
		payloads := make([][]byte, 6)
		for i := range payloads {
			payloads[i] = make([]byte, config.LineSize)
			src.Fill(payloads[i])
		}
		var commitLat units.Duration
		for t := 0; t < txs; t++ {
			records := 1 + src.Intn(4)
			for r := 0; r < records; r++ {
				if src.Bool(0.8) {
					j.append(payloads[src.Intn(len(payloads))])
				} else {
					fresh := make([]byte, config.LineSize)
					src.Fill(fresh)
					j.append(fresh)
				}
			}
			start := j.now
			j.append(commitMarker)
			commitLat += j.now.Sub(start)
		}
		return commitLat / txs
	}

	fmt.Printf("%-28s %16s\n", "configuration", "mean commit")
	base := baseline.NewSecureNVM(logLines, cfg)
	fmt.Printf("%-28s %16v\n", "SecureNVM", runJournal(base))

	for _, persist := range []core.PersistMode{core.PersistBatteryBacked, core.PersistWriteThrough} {
		ctrl := core.New(core.Options{DataLines: logLines, Config: cfg, Persist: persist})
		lat := runJournal(ctrl)
		r := ctrl.Report()
		fmt.Printf("%-28s %16v   (%.0f%% of appends deduplicated)\n",
			"DeWrite/"+persist.String(), lat, float64(r.DupEliminated)/float64(r.Writes)*100)
		if r.DupEliminated == 0 {
			log.Fatal("journal produced no duplicates?")
		}
	}

	fmt.Println("\nThe commit marker and recurring payloads never hit the array twice:")
	fmt.Println("the log's persistence ordering still holds (every append returns only")
	fmt.Println("when its write — or its dedup metadata update — has completed).")
}

// replay: record a workload once, then replay the identical trace through
// different secure-NVM schemes — the apples-to-apples methodology the
// experiment suite uses, shown end to end with a trace file on disk.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dewrite/internal/config"
	"dewrite/internal/sim"
	"dewrite/internal/trace"
	"dewrite/internal/workload"
)

func main() {
	cfg := config.Default()
	cfg.NVM.Ranks = 2
	cfg.NVM.BanksPerRank = 4

	// Record: materialize one run of the streamcluster profile.
	prof, _ := workload.ByName("streamcluster")
	tr := workload.Generate(prof, 2026, 20000)

	path := filepath.Join(os.TempDir(), "streamcluster.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := tr.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	f.Close()
	defer os.Remove(path)
	fmt.Printf("recorded %d requests (%.1f MB) to %s\n\n", len(tr.Requests), float64(n)/1e6, path)

	// Replay: load it back and drive every scheme with the same stream.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := trace.ReadTrace(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %12s %10s %12s\n", "scheme", "mean write", "mean read", "IPC", "energy uJ")
	var base sim.Result
	for _, s := range []sim.Scheme{sim.SchemeSecureNVM, sim.SchemeShredder,
		sim.SchemeDirect, sim.SchemeParallel, sim.SchemeDeWrite} {
		mem := sim.NewMemory(s, loaded.Lines, cfg)
		res := sim.RunTrace(loaded, mem, 4000)
		fmt.Printf("%-10s %12v %12v %10.3f %12.1f\n",
			s, res.MeanWriteLat, res.MeanReadLat, res.IPC, res.EnergyPJ/1e6)
		if s == sim.SchemeSecureNVM {
			base = res
		}
		if s == sim.SchemeDeWrite {
			fmt.Printf("\nDeWrite vs SecureNVM on the identical stream: "+
				"%.2fx writes, %.2fx reads, %.2fx IPC, %.2fx energy\n",
				sim.WriteSpeedup(res, base), sim.ReadSpeedup(res, base),
				sim.RelativeIPC(res, base), sim.RelativeEnergy(res, base))
		}
	}
}

// worstcase: the paper's Section IV-C4 adversarial experiment — a workload
// with no duplicate lines at all (randomized values inserted into a
// two-dimensional array and then traversed). DeWrite's prediction-based
// parallel scheme keeps detection off the critical path, so performance
// tracks the traditional secure NVM within a few percent.
package main

import (
	"fmt"

	"dewrite/internal/config"
	"dewrite/internal/sim"
	"dewrite/internal/workload"
)

func main() {
	prof := workload.WorstCase()
	cfg := config.Default()
	cfg.NVM.Ranks = 2
	cfg.NVM.BanksPerRank = 4
	opts := sim.Options{Requests: 24000, Warmup: 6000, Seed: 99}

	dw, _ := sim.RunScheme(sim.SchemeDeWrite, prof, cfg, opts)
	base, _ := sim.RunScheme(sim.SchemeSecureNVM, prof, cfg, opts)

	if dw.Gen.Duplicates != 0 {
		panic("worst-case workload produced duplicates")
	}

	fmt.Println("Worst case: zero duplicate writes (DeWrite can eliminate nothing).")
	fmt.Printf("%-18s %12s %12s %10s\n", "metric", "DeWrite", "SecureNVM", "ratio")
	fmt.Printf("%-18s %12v %12v %9.3f\n", "mean write lat", dw.MeanWriteLat, base.MeanWriteLat,
		float64(dw.MeanWriteLat)/float64(base.MeanWriteLat))
	fmt.Printf("%-18s %12v %12v %9.3f\n", "mean read lat", dw.MeanReadLat, base.MeanReadLat,
		float64(dw.MeanReadLat)/float64(base.MeanReadLat))
	fmt.Printf("%-18s %12.3f %12.3f %9.3f\n", "IPC", dw.IPC, base.IPC, sim.RelativeIPC(dw, base))
	fmt.Printf("%-18s %10.1funJ %10.1funJ %9.3f\n", "energy", dw.EnergyPJ/1000, base.EnergyPJ/1000,
		sim.RelativeEnergy(dw, base))
	fmt.Printf("%-18s %12d %12d %9.3f\n", "device writes", dw.Device.Writes, base.Device.Writes,
		float64(dw.Device.Writes)/float64(base.Device.Writes))

	rel := sim.RelativeIPC(dw, base)
	if rel > 0.9 {
		fmt.Printf("\nDeWrite retains %.1f%% of baseline IPC with zero exploitable duplication\n", rel*100)
		fmt.Println("(the paper reports less than 3% degradation in this case).")
	} else {
		fmt.Printf("\nWARNING: worst-case degradation larger than expected (%.3f)\n", rel)
	}
}

// endurance: a lifetime analysis of the secure NVM with and without
// DeWrite. PCM cells endure 10^7–10^8 writes; eliminating duplicate line
// writes stretches device lifetime roughly in proportion to the write
// reduction, and the bit-level behaviour (what DCW/FNW/DEUCE see) improves
// on top (Figures 12 and 13 of the paper).
package main

import (
	"fmt"

	"dewrite/internal/baseline"
	"dewrite/internal/config"
	"dewrite/internal/sim"
	"dewrite/internal/trace"
	"dewrite/internal/workload"
)

func main() {
	const endurance = 1e8 // PCM cell write endurance
	cfg := config.Default()
	cfg.NVM.Ranks = 2
	cfg.NVM.BanksPerRank = 4

	fmt.Println("Lifetime under the write stream of each application (relative years,")
	fmt.Println("assuming perfect wear leveling and 10^8 cell endurance):")
	fmt.Println()
	fmt.Printf("%-14s %10s %12s %12s %10s\n", "app", "dup %", "base wr/line", "DW wr/line", "lifetime x")

	for _, name := range []string{"bzip2", "sjeng", "mcf", "streamcluster", "lbm", "blackscholes"} {
		prof, _ := workload.ByName(name)
		opts := sim.Options{Requests: 20000, Warmup: 4000, Seed: 11}

		dwRes, dwMem := sim.RunScheme(sim.SchemeDeWrite, prof, cfg, opts)
		baseRes, baseMem := sim.RunScheme(sim.SchemeSecureNVM, prof, cfg, opts)

		dwWear := sim.DeviceOf(dwMem).WearStats()
		baseWear := sim.DeviceOf(baseMem).WearStats()

		// Lifetime scales inversely with the write rate for a fixed trace.
		lifetimeX := float64(baseRes.Device.Writes) / float64(dwRes.Device.Writes)
		fmt.Printf("%-14s %9.1f%% %12.2f %12.2f %9.2fx\n",
			name,
			float64(dwRes.Gen.Duplicates)/float64(dwRes.Gen.Writes)*100,
			baseWear.MeanPerLine, dwWear.MeanPerLine, lifetimeX)
	}

	// Bit-level view on one app: what fraction of cells actually flips per
	// write under DCW, with and without DeWrite's eliminations.
	fmt.Println("\nBit-level endurance on mcf (cells flipped per write):")
	prof, _ := workload.ByName("mcf")
	gen := workload.NewGenerator(prof, 3)
	dcw := baseline.NewDCW()
	dcwDW := baseline.NewDCW()
	resident := map[string]int{}
	byAddr := map[uint64]string{}
	var flips, flipsDW, writes uint64
	for i := 0; i < 30000; i++ {
		req := gen.Next()
		if req.Op != trace.Write {
			continue
		}
		writes++
		isDup := resident[string(req.Data)] > 0
		if old, ok := byAddr[req.Addr]; ok {
			resident[old]--
		}
		byAddr[req.Addr] = string(req.Data)
		resident[string(req.Data)]++

		flips += uint64(dcw.Write(req.Addr, req.Data))
		if !isDup {
			flipsDW += uint64(dcwDW.Write(req.Addr, req.Data))
		}
	}
	denom := float64(writes) * config.LineBits
	fmt.Printf("  DCW alone:      %5.1f%% of cells per write\n", float64(flips)/denom*100)
	fmt.Printf("  DeWrite + DCW:  %5.1f%% of cells per write\n", float64(flipsDW)/denom*100)
	fmt.Printf("\nWith %.0e endurance, halving cell flips roughly doubles the time to\n", endurance)
	fmt.Println("first cell failure under the same traffic.")
}

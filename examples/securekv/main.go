// securekv: a tiny persistent key-value store running on top of the DeWrite
// secure NVM, demonstrating how line-level deduplication absorbs the
// redundancy real storage workloads carry (repeated values, zero padding)
// while everything in the NVM stays encrypted.
//
// The store maps fixed keys onto line addresses (one 256 B line per value
// slot) and writes through the controller, so every put pays the secure-NVM
// write path and every get the read path. It then loads a workload in which
// many users share a handful of configuration blobs — the cross-user
// redundancy dedup thrives on — and compares against the traditional
// secure NVM.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dewrite/internal/baseline"
	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/rng"
	"dewrite/internal/units"
)

// kv is a fixed-capacity key-value store over a line-addressable memory.
type kv struct {
	write func(now units.Time, line uint64, data []byte) units.Time
	read  func(now units.Time, line uint64) ([]byte, units.Time)

	slots map[string]uint64
	next  uint64
	cap   uint64
	now   units.Time
}

func newKV(capLines uint64,
	write func(units.Time, uint64, []byte) units.Time,
	read func(units.Time, uint64) ([]byte, units.Time)) *kv {
	return &kv{write: write, read: read, slots: make(map[string]uint64), cap: capLines}
}

// Put stores a value (at most one line) under key.
func (s *kv) Put(key string, value []byte) {
	if len(value) > config.LineSize {
		log.Fatalf("value for %q exceeds one line", key)
	}
	slot, ok := s.slots[key]
	if !ok {
		if s.next >= s.cap {
			log.Fatal("kv store full")
		}
		slot = s.next
		s.next++
		s.slots[key] = slot
	}
	line := make([]byte, config.LineSize)
	copy(line, value)
	s.now = s.write(s.now, slot, line)
}

// Get returns the value stored under key.
func (s *kv) Get(key string) ([]byte, bool) {
	slot, ok := s.slots[key]
	if !ok {
		return nil, false
	}
	line, done := s.read(s.now, slot)
	s.now = done
	return bytes.TrimRight(line, "\x00"), true
}

func main() {
	const users = 2000

	// Shared configuration blobs: most users run one of four presets.
	presets := [][]byte{
		[]byte(`{"theme":"dark","lang":"en","notifications":true}`),
		[]byte(`{"theme":"light","lang":"en","notifications":true}`),
		[]byte(`{"theme":"dark","lang":"de","notifications":false}`),
		[]byte(`{"theme":"light","lang":"fr","notifications":true}`),
	}

	run := func(name string,
		write func(units.Time, uint64, []byte) units.Time,
		read func(units.Time, uint64) ([]byte, units.Time),
		stats func() (deviceWrites uint64, energyPJ float64)) {

		store := newKV(4096, write, read)
		src := rng.New(2024)
		for u := 0; u < users; u++ {
			key := fmt.Sprintf("user:%04d:config", u)
			if src.Bool(0.9) {
				store.Put(key, presets[src.Intn(len(presets))])
			} else {
				// A customized config, unique per user.
				store.Put(key, []byte(fmt.Sprintf(`{"theme":"custom-%d","seed":%d}`, u, src.Uint64())))
			}
		}
		// Read a sample back and verify.
		got, ok := store.Get("user:0007:config")
		if !ok || len(got) == 0 {
			log.Fatalf("%s: lost user 7's config", name)
		}
		w, e := stats()
		fmt.Printf("%-10s %5d puts -> %5d NVM writes, energy %8.1f nJ, sample read: %s\n",
			name, users, w, e/1000, got)
	}

	dw := core.New(core.Options{DataLines: 4096})
	run("DeWrite", dw.Write, dw.Read, func() (uint64, float64) {
		st := dw.Device().Stats()
		return st.Writes, st.EnergyPJ
	})

	base := baseline.NewSecureNVM(4096, config.Default())
	run("SecureNVM", base.Write, base.Read, func() (uint64, float64) {
		st := base.Device().Stats()
		return st.Writes, st.EnergyPJ
	})

	r := dw.Report()
	fmt.Printf("\nDeWrite eliminated %d of %d writes (%.0f%%): the four shared presets\n",
		r.DupEliminated, r.Writes, float64(r.DupEliminated)/float64(r.Writes)*100)
	fmt.Println("are each stored once, no matter how many users select them.")
}

// Quickstart: build a DeWrite secure-NVM controller, write a few cache
// lines (some duplicate, some unique), read them back, and inspect what the
// deduplicating encrypted memory actually did.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/units"
)

func main() {
	// A controller over 4096 logical lines (1 MB) with the paper's default
	// configuration: counter-mode AES encryption, CRC-32 dedup detection,
	// 3-bit duplication predictor, colocated metadata.
	ctrl := core.New(core.Options{DataLines: 4096})

	payload := func(s string) []byte {
		line := make([]byte, config.LineSize)
		copy(line, s)
		return line
	}

	var now units.Time

	// Write the same content to three different logical lines. The first
	// write stores it; the next two are detected as duplicates and never
	// reach the NVM array.
	shared := payload("hello, non-volatile world")
	for _, addr := range []uint64{10, 20, 30} {
		now = ctrl.Write(now, addr, shared)
	}

	// A unique line is encrypted and written normally.
	now = ctrl.Write(now, 40, payload("something else entirely"))

	// Reads resolve the address mapping and decrypt transparently.
	for _, addr := range []uint64{10, 20, 30, 40} {
		data, done := ctrl.Read(now, addr)
		now = done
		fmt.Printf("line %2d reads %q\n", addr, bytes.TrimRight(data, "\x00"))
	}

	// The device holds ciphertext, not plaintext.
	raw := ctrl.Device().Peek(10)
	if bytes.Equal(raw, shared) {
		log.Fatal("plaintext leaked to the device!")
	}
	fmt.Printf("\nNVM cell contents of line 10 start with % x... (encrypted)\n", raw[:8])

	r := ctrl.Report()
	fmt.Printf("\nreport:\n")
	fmt.Printf("  CPU writes          %d\n", r.Writes)
	fmt.Printf("  eliminated as dup   %d\n", r.DupEliminated)
	fmt.Printf("  NVM array writes    %d\n", r.Device.Writes)
	fmt.Printf("  mean write latency  %v\n", r.MeanWriteLat)
	fmt.Printf("  mean read latency   %v\n", r.MeanReadLat)
	fmt.Printf("  energy              %.1f nJ\n", r.Device.EnergyPJ/1000)

	if r.DupEliminated != 2 {
		log.Fatalf("expected 2 duplicate writes eliminated, got %d", r.DupEliminated)
	}
	fmt.Println("\nquickstart OK: 2 of 4 writes were deduplicated away")
}

// tamper: the stolen-DIMM attack, attempted. The attacker pulls the DIMM,
// reads raw cells (confidentiality: defeated by encryption), then tries to
// modify a line and splice an old line back in (integrity/replay: detected
// by the Merkle tree extension).
package main

import (
	"bytes"
	"fmt"
	"log"

	"dewrite/internal/config"
	"dewrite/internal/core"
	"dewrite/internal/units"
)

func main() {
	cfg := config.Default()
	cfg.NVM = config.SmallNVM(4 * 1024 * 1024)
	ctrl := core.New(core.Options{DataLines: 4096, Config: cfg, Integrity: true})

	secret := make([]byte, config.LineSize)
	copy(secret, "PIN=4242 account=oceanic-815")
	var now units.Time
	now = ctrl.Write(now, 100, secret)

	// 1. Confidentiality: the raw cells reveal nothing.
	raw := ctrl.Device().Peek(100)
	if bytes.Contains(raw, []byte("4242")) {
		log.Fatal("plaintext visible on the stolen DIMM!")
	}
	fmt.Printf("raw cells of line 100: % x... (no plaintext)\n", raw[:12])

	// 2. Tampering: the attacker flips bits in the stored ciphertext.
	tampered := append([]byte(nil), raw...)
	tampered[5] ^= 0xff
	ctrl.Device().Poke(100, tampered)

	before := ctrl.Report().TreeFailed
	_, now = ctrl.Read(now, 100)
	if ctrl.Report().TreeFailed == before {
		log.Fatal("tampering went undetected")
	}
	fmt.Println("tampered line read  -> integrity verification FAILED (detected)")

	// 3. Replay: the attacker restores the original ciphertext of an older
	// write after the line has moved on.
	ctrl.Device().Poke(100, raw) // undo tampering
	fresh := make([]byte, config.LineSize)
	copy(fresh, "PIN=9999 rotated")
	now = ctrl.Write(now, 100, fresh)
	ctrl.Device().Poke(100, raw) // splice the stale ciphertext back

	before = ctrl.Report().TreeFailed
	_, now = ctrl.Read(now, 100)
	if ctrl.Report().TreeFailed == before {
		log.Fatal("replay went undetected")
	}
	fmt.Println("replayed stale line -> integrity verification FAILED (detected)")

	r := ctrl.Report()
	fmt.Printf("\ntree activity: %d updates, %d checks, %d failures caught\n",
		r.TreeUpdates, r.TreeChecks, r.TreeFailed)
}

#!/usr/bin/env bash
# chaos_smoke.sh — kill -9 crash-recovery smoke for dewrite-serve.
#
# Boots the daemon with the deterministic chaos plan armed and a snapshot
# directory, drives it with the retrying load generator until at least one
# snapshot generation has committed, kills the process with SIGKILL mid-load,
# restarts it over the same directory, and then asserts the production
# story end to end:
#
#   1. /readyz returns 200 only after recovery + scrub complete;
#   2. the restarted daemon reports a nonzero serve_recovery_generation,
#      recovered keys, and zero scrub-dropped keys;
#   3. a clean load run against the recovered daemon finishes with zero
#      failed requests and zero retry give-ups despite armed chaos;
#   4. the books balance: responses the clients received equal the server's
#      serve_requests_total + serve_shed_total.
#
# Artifacts (structured chaos logs, metrics scrapes, load summaries) land in
# $ARTIFACT_DIR (default artifacts/chaos) for post-mortem inspection.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:17420
METRICS=127.0.0.1:19420
CHAOS_SEED=1234
ART="${ARTIFACT_DIR:-artifacts/chaos}"
WORK="$(mktemp -d)"
SNAP="$WORK/snap"
mkdir -p "$ART" "$SNAP"

SERVE_PID=""
LOAD_PID=""
cleanup() {
  [ -n "$LOAD_PID" ] && kill -9 "$LOAD_PID" 2>/dev/null || true
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "chaos_smoke: FAIL: $*" >&2
  exit 1
}

scrape() { # scrape FILE — snapshot /metrics, tolerate transient errors
  curl -fsS "http://$METRICS/metrics" -o "$1" 2>/dev/null
}

metric_sum() { # metric_sum FILE PREFIX — sum every sample of one family
  awk -v pfx="$2" '$1 ~ "^"pfx"(\\{|$)" { s += $2 } END { printf "%d\n", s }' "$1"
}

wait_ready() { # wait_ready SECONDS — poll /readyz until 200
  for _ in $(seq 1 $(( $1 * 10 ))); do
    if curl -fsS "http://$METRICS/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

echo "chaos_smoke: building dewrite-serve"
go build -o "$WORK/dewrite-serve" ./cmd/dewrite-serve

start_server() { # start_server LOGFILE
  "$WORK/dewrite-serve" -addr "$ADDR" -metrics "$METRICS" \
    -shards 4 -lines 16384 -advance-every 64 \
    -snapshot-dir "$SNAP" -snapshot-every 2 -snapshot-keep 3 \
    -chaos "$CHAOS_SEED" -log "$ART/$1" -log-level debug &
  SERVE_PID=$!
}

# --- Phase 1: crash under load, after at least one committed snapshot -------
start_server serve-crash.log
wait_ready 30 || fail "first boot never became ready"

"$WORK/dewrite-serve" -load "$ADDR" -load-requests 200000 -load-conns 4 \
  -load-seed 7 -load-deadline 5s >"$ART/load-crash.json" 2>/dev/null &
LOAD_PID=$!

committed=0
for _ in $(seq 1 300); do
  if scrape "$WORK/m.txt"; then
    snaps=$(metric_sum "$WORK/m.txt" dewrite_serve_snapshots_total)
    if [ "$snaps" -ge 1 ]; then committed=1; break; fi
  fi
  kill -0 "$LOAD_PID" 2>/dev/null || fail "load generator exited before a snapshot committed"
  sleep 0.1
done
[ "$committed" -eq 1 ] || fail "no snapshot committed within 30s under load"

echo "chaos_smoke: snapshot committed; delivering SIGKILL mid-load"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
kill -9 "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
LOAD_PID=""

ls "$SNAP"/gen-*/manifest.json >/dev/null 2>&1 || fail "no committed generation on disk after crash"

# --- Phase 2: restart over the crash debris, recovery must be visible -------
echo "chaos_smoke: restarting over $SNAP"
start_server serve-recover.log
wait_ready 30 || fail "restarted daemon never became ready"

scrape "$ART/metrics-post-recovery.txt" || fail "post-recovery scrape failed"
gen=$(metric_sum "$ART/metrics-post-recovery.txt" dewrite_serve_recovery_generation)
keys=$(metric_sum "$ART/metrics-post-recovery.txt" dewrite_serve_recovery_keys)
dropped=$(metric_sum "$ART/metrics-post-recovery.txt" dewrite_serve_recovery_dropped_keys)
[ "$gen" -ge 1 ] || fail "serve_recovery_generation is $gen, want >= 1"
[ "$keys" -ge 1 ] || fail "serve_recovery_keys is $keys, want >= 1"
[ "$dropped" -eq 0 ] || fail "scrub dropped $dropped keys from a committed snapshot"
echo "chaos_smoke: recovered generation $gen ($keys keys, $dropped dropped)"

# --- Phase 3: clean load against the recovered daemon, books must balance ---
"$WORK/dewrite-serve" -load "$ADDR" -load-requests 2048 -load-conns 4 \
  -load-seed 11 -load-deadline 5s >"$ART/load-clean.json"

failed=$(jq -r .failed "$ART/load-clean.json")
giveups=$(jq -r .stats.GiveUps "$ART/load-clean.json")
received=$(jq -r .stats.Received "$ART/load-clean.json")
reconnects=$(jq -r .stats.Reconnects "$ART/load-clean.json")
[ "$failed" -eq 0 ] || fail "clean load reported $failed failed requests"
[ "$giveups" -eq 0 ] || fail "retry client gave up $giveups times"
[ "$received" -ge 2048 ] || fail "clients received only $received responses"

scrape "$ART/metrics-post-load.txt" || fail "post-load scrape failed"
served=$(metric_sum "$ART/metrics-post-load.txt" dewrite_serve_requests_total)
shed=$(metric_sum "$ART/metrics-post-load.txt" dewrite_serve_shed_total)
if [ "$received" -ne $((served + shed)) ]; then
  fail "books out of balance: clients received $received, server served $served + shed $shed"
fi
echo "chaos_smoke: books balance (received=$received served=$served shed=$shed reconnects=$reconnects)"

# --- Clean shutdown ----------------------------------------------------------
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "daemon exited nonzero on SIGTERM"
SERVE_PID=""

echo "chaos_smoke: PASS"
